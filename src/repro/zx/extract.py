"""Circuit extraction from graph-like ZX-diagrams (paper Sec. V, ref. [38]).

Rewrites a reduced diagram back into a circuit by peeling structure off the
output side: spider phases become phase gates, Hadamard edges between
frontier spiders become CZs, and Gaussian elimination over GF(2) of the
frontier biadjacency matrix yields the CNOTs that make a frontier spider
advance.  Works for the gadget-free diagrams produced by
:func:`repro.zx.simplify.clifford_simp`; diagrams containing phase gadgets
(from ``full_reduce``) may raise :class:`ExtractionError`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from .diagram import EdgeType, VertexType, ZXDiagram
from .rules import check_pivot, pivot
from .simplify import to_graph_like


class ExtractionError(RuntimeError):
    """The diagram has no circuit structure this extractor can recover."""


def _detach_output(diagram: ZXDiagram, output: int) -> None:
    """Give ``output`` a private frontier spider via identity insertion.

    All output edges are simple at this point; the inserted pair of Hadamard
    edges composes to a plain wire, so semantics are untouched.
    """
    ((w, ty),) = list(diagram.edges[output].items())
    if ty != EdgeType.SIMPLE:
        raise ExtractionError("output edges must be normalized to simple first")
    qubit = diagram.qubit_of.get(output, 0.0)
    va = diagram.add_vertex(VertexType.Z, 0, qubit=qubit)
    vb = diagram.add_vertex(VertexType.Z, 0, qubit=qubit)
    diagram.remove_edge(output, w)
    diagram.add_edge(w, va, EdgeType.HADAMARD)
    diagram.add_edge(va, vb, EdgeType.HADAMARD)
    diagram.add_edge(vb, output, EdgeType.SIMPLE)


def extract_circuit(diagram: ZXDiagram) -> QuantumCircuit:
    """Extract an equivalent circuit (up to global phase) from a diagram.

    The input is not modified.  Raises :class:`ExtractionError` when the
    frontier stops making progress (phase gadgets / non-unitary diagrams).
    """
    d = diagram.copy()
    to_graph_like(d)
    n = len(d.outputs)
    if len(d.inputs) != n:
        raise ExtractionError("extraction needs equal input/output arity")
    gates: List[Tuple] = []  # peeled output-side first; reversed at the end

    inputs = set(d.inputs)
    # Give every input a private identity chain so the frontier only ever
    # reaches inputs through fresh spiders: guarantees every edge touched by
    # a Gaussian row operation is a Hadamard edge (two H identity spiders
    # compose to a plain wire, so semantics are untouched).
    for i in list(d.inputs):
        ((w, ty),) = list(d.edges[i].items())
        va = d.add_vertex(VertexType.Z, 0, qubit=d.qubit_of.get(i, 0.0))
        vb = d.add_vertex(VertexType.Z, 0, qubit=d.qubit_of.get(i, 0.0))
        d.remove_edge(i, w)
        d.add_edge(w, va, EdgeType.HADAMARD)
        d.add_edge(va, vb, EdgeType.HADAMARD)
        d.add_edge(vb, i, ty)
    # Normalize output edges to simple, peeling H boxes as gates.
    for q, o in enumerate(d.outputs):
        ((w, ty),) = list(d.edges[o].items())
        if ty == EdgeType.HADAMARD:
            gates.append(("h", q))
            d.edges[o][w] = EdgeType.SIMPLE
            d.edges[w][o] = EdgeType.SIMPLE
    # Every output needs its own non-boundary frontier spider.
    used: set = set()
    for q, o in enumerate(d.outputs):
        ((w, _),) = list(d.edges[o].items())
        if w in inputs or w in used:
            _detach_output(d, o)
            ((w, _),) = list(d.edges[o].items())
        used.add(w)
    frontier: List[int] = []
    for o in d.outputs:
        ((w, _),) = list(d.edges[o].items())
        frontier.append(w)

    output_of = {v: q for q, v in enumerate(frontier)}

    def refresh_output_map() -> None:
        output_of.clear()
        for q, v in enumerate(frontier):
            output_of[v] = q

    max_iterations = 10 * (d.num_vertices() + n) + 100
    for _ in range(max_iterations):
        progress = False
        # 1. Peel frontier phases as phase gates.
        for q, v in enumerate(frontier):
            phase = d.phases[v]
            if not phase.is_zero:
                gates.append(("p", q, phase.to_radians()))
                d.set_phase(v, 0)
                progress = True
        # 2. Peel frontier-frontier Hadamard edges as CZ gates.
        for q1 in range(n):
            for q2 in range(q1 + 1, n):
                u, v = frontier[q1], frontier[q2]
                ty = d.edge_type(u, v)
                if ty is None:
                    continue
                if ty != EdgeType.HADAMARD:
                    raise ExtractionError("simple edge between frontier spiders")
                gates.append(("cz", q1, q2))
                d.remove_edge(u, v)
                progress = True
        # 3. Advance frontier spiders that touch exactly one interior spider.
        frontier_set = set(frontier)
        advanced = False
        for q in range(n):
            v = frontier[q]
            spider_nbrs = []
            input_nbrs = []
            for w, ty in d.edges[v].items():
                if w == d.outputs[q]:
                    continue
                if w in inputs:
                    input_nbrs.append(w)
                else:
                    spider_nbrs.append((w, ty))
            if len(spider_nbrs) == 1 and not input_nbrs:
                w, ty = spider_nbrs[0]
                if w in frontier_set:
                    raise ExtractionError("advancement into another frontier wire")
                if ty != EdgeType.HADAMARD:
                    raise ExtractionError("non-Hadamard interior edge")
                gates.append(("h", q))
                o = d.outputs[q]
                d.remove_vertex(v)
                d.add_edge(w, o, EdgeType.SIMPLE)
                frontier[q] = w
                frontier_set.discard(v)
                frontier_set.add(w)
                advanced = True
        if advanced:
            refresh_output_map()
            continue
        if progress:
            continue
        # 4. All wires whose frontier touches only inputs are done.
        pending = [
            q
            for q in range(n)
            if any(
                w not in inputs and w != d.outputs[q]
                for w in d.edges[frontier[q]]
            )
        ]
        if not pending:
            break
        # 5. Gaussian elimination over the frontier biadjacency matrix.
        if not _eliminate(d, frontier, pending, inputs, gates):
            # 6. Stuck: usually a phase gadget blocks every row.  Pivot a
            #    gadget hub against a frontier spider (after giving that
            #    spider a private identity chain so it becomes interior);
            #    this absorbs the gadget and unblocks the elimination.
            if _pivot_gadget_at_frontier(d, frontier, inputs):
                refresh_output_map()
                continue
            # 7. Last resort: the row operations may have re-enabled interior
            #    simplifications (local complementation / pivot); those never
            #    touch boundary-adjacent spiders, so the frontier stays valid.
            if _interior_shake(d):
                continue
            raise ExtractionError(
                "no extraction progress (phase gadgets or non-circuit diagram)"
            )
    else:
        raise ExtractionError("extraction did not terminate")

    # Final permutation: each frontier spider must see exactly one input.
    perm: List[int] = []
    input_position = {v: i for i, v in enumerate(d.inputs)}
    for q in range(n):
        v = frontier[q]
        nbrs = [(w, ty) for w, ty in d.edges[v].items() if w != d.outputs[q]]
        if len(nbrs) != 1 or nbrs[0][0] not in inputs:
            raise ExtractionError("frontier did not land on the inputs")
        w, ty = nbrs[0]
        if ty == EdgeType.HADAMARD:
            gates.append(("h", q))
        perm.append(input_position[w])

    swaps: List[Tuple[str, int, int]] = []
    current = list(range(n))
    for q in range(n):
        if current[q] == perm[q]:
            continue
        j = current.index(perm[q])
        swaps.append(("swap", q, j))
        current[q], current[j] = current[j], current[q]

    circuit = QuantumCircuit(n, name="extracted")
    for item in swaps + list(reversed(gates)):
        kind = item[0]
        if kind == "h":
            circuit.h(item[1])
        elif kind == "p":
            circuit.p(item[2], item[1])
        elif kind == "cz":
            circuit.cz(item[1], item[2])
        elif kind == "cnot":
            circuit.cx(item[1], item[2])
        elif kind == "swap":
            circuit.swap(item[1], item[2])
        else:  # pragma: no cover
            raise AssertionError(f"unknown extraction gate {item}")
    return circuit


def _is_gadget_hub(d: ZXDiagram, v: int) -> bool:
    """A phase-free interior spider carrying a degree-1 (leaf) neighbour."""
    if d.is_boundary(v) or d.types[v] != VertexType.Z:
        return False
    if not d.phases[v].is_zero:
        return False
    if any(d.is_boundary(w) for w in d.neighbors(v)):
        return False
    return any(d.degree(w) == 1 for w in d.neighbors(v))


def _pivot_gadget_at_frontier(
    d: ZXDiagram, frontier: List[int], inputs: set
) -> bool:
    """Absorb one frontier-adjacent phase gadget by pivoting its hub.

    The frontier spider first gets a private Hadamard identity chain to its
    output so it becomes interior; the pivot then removes the (Pauli) pair
    and reconnects the gadget leaf as an ordinary spider.  Returns True when
    a pivot was applied.
    """
    for q, v in enumerate(frontier):
        if not d.phases[v].is_zero:
            continue
        for h in list(d.edges[v]):
            if h in inputs or d.is_boundary(h):
                continue
            if d.edge_type(v, h) != EdgeType.HADAMARD:
                continue
            if not _is_gadget_hub(d, h):
                continue
            # Detach v from its output through two H identity spiders.
            ((o, ty),) = [
                (w, t) for w, t in d.edges[v].items() if d.is_boundary(w)
            ] or [(None, None)]
            if o is None or ty != EdgeType.SIMPLE:
                continue
            qubit = d.qubit_of.get(o, 0.0)
            va = d.add_vertex(VertexType.Z, 0, qubit=qubit)
            vb = d.add_vertex(VertexType.Z, 0, qubit=qubit)
            d.remove_edge(v, o)
            d.add_edge(v, va, EdgeType.HADAMARD)
            d.add_edge(va, vb, EdgeType.HADAMARD)
            d.add_edge(vb, o, EdgeType.SIMPLE)
            frontier[q] = vb
            if check_pivot(d, v, h):
                pivot(d, v, h)
                return True
            # Pivot preconditions unexpectedly failed: undo the detachment.
            d.remove_vertex(va)
            d.remove_vertex(vb)
            d.add_edge(v, o, EdgeType.SIMPLE)
            frontier[q] = v
    return False


def _interior_shake(d: ZXDiagram) -> bool:
    """Apply one interior local complementation or pivot, if any exists.

    Row operations during extraction change the interior graph, which can
    re-enable the Duncan-et-al. simplifications; one application strictly
    removes interior spiders, so repeated shakes terminate.
    """
    from .rules import check_local_complementation, local_complementation

    for v in list(d.vertices()):
        if v in d.types and check_local_complementation(d, v):
            if any(d.degree(w) == 1 for w in d.neighbors(v)):
                continue  # keep phase gadgets intact
            local_complementation(d, v)
            return True
    for u, v, ty in d.edge_list():
        if ty != EdgeType.HADAMARD:
            continue
        if u not in d.types or v not in d.types:
            continue
        if any(d.degree(w) == 1 for w in d.neighbors(u)):
            continue
        if any(d.degree(w) == 1 for w in d.neighbors(v)):
            continue
        if check_pivot(d, u, v):
            pivot(d, u, v)
            return True
    return False


def _row_add(
    d: ZXDiagram, frontier: List[int], source_q: int, target_q: int,
    gates: List[Tuple],
) -> None:
    """XOR frontier row ``source`` into row ``target`` by emitting a CNOT.

    The peeled gate is ``CNOT(control=target_q, target=source_q)`` — i.e.
    postfixing that CNOT makes the *target* row's Hadamard-neighbourhood
    absorb the source row's (calibrated against dense semantics in tests).
    """
    u = frontier[source_q]
    v = frontier[target_q]
    if d.edge_type(u, v) is not None:
        raise ExtractionError("row operation between connected frontier spiders")
    gates.append(("cnot", target_q, source_q))
    for w, ty in list(d.edges[u].items()):
        if w == d.outputs[source_q]:
            continue
        if ty != EdgeType.HADAMARD:
            raise ExtractionError("row operation over a non-Hadamard edge")
        d.add_edge_smart(v, w, EdgeType.HADAMARD)


def _eliminate(
    d: ZXDiagram,
    frontier: List[int],
    pending: Sequence[int],
    inputs: set,
    gates: List[Tuple],
) -> bool:
    """Gauss-eliminate the pending-rows biadjacency; returns True on progress.

    Progress means some row ends with exactly one interior-spider neighbour
    (and no input edges), which step 3 of the main loop can then advance.
    """
    columns: List[int] = []
    column_index: Dict[int, int] = {}
    rows: Dict[int, int] = {}
    for q in pending:
        v = frontier[q]
        bits = 0
        for w in d.edges[v]:
            if w == d.outputs[q] or w in inputs:
                continue
            if w not in column_index:
                column_index[w] = len(columns)
                columns.append(w)
            bits |= 1 << column_index[w]
        rows[q] = bits

    # Standard GF(2) forward elimination with full back-substitution.
    order = list(pending)
    pivot_rows: List[int] = []
    col = 0
    for col in range(len(columns)):
        pivot = None
        for q in order:
            if q in pivot_rows:
                continue
            if (rows[q] >> col) & 1:
                pivot = q
                break
        if pivot is None:
            continue
        pivot_rows.append(pivot)
        for q in order:
            if q != pivot and (rows[q] >> col) & 1:
                _row_add(d, frontier, pivot, q, gates)
                rows[q] ^= rows[pivot]

    # Progress check: some pending row now has spider-degree 1 and no inputs.
    for q in pending:
        v = frontier[q]
        spider_count = 0
        input_count = 0
        for w in d.edges[v]:
            if w == d.outputs[q]:
                continue
            if w in inputs:
                input_count += 1
            else:
                spider_count += 1
        if spider_count == 1 and input_count == 0:
            return True
        if spider_count == 0:
            return True  # wire finished (or will error out informatively)
    return False
