"""ZX-calculus rewrite rules (paper Sec. V).

Each function applies one rule instance in place.  All rules preserve the
diagram's linear map up to a nonzero global scalar; the test suite proves
this by dense tensor evaluation before/after every rule on random diagrams.

The graph-theoretic rules (local complementation, pivot) require *graph-like*
diagrams — only Z-spiders, only Hadamard edges between spiders — which
:func:`repro.zx.simplify.to_graph_like` establishes.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Tuple

from .diagram import EdgeType, Phase, VertexType, ZXDiagram


def check_fusable(diagram: ZXDiagram, u: int, v: int) -> bool:
    return (
        u != v
        and not diagram.is_boundary(u)
        and not diagram.is_boundary(v)
        and diagram.types[u] == diagram.types[v]
        and diagram.edge_type(u, v) == EdgeType.SIMPLE
    )


def fuse_spiders(diagram: ZXDiagram, u: int, v: int) -> None:
    """Spider fusion: adjacent same-colour spiders merge, phases add."""
    if not check_fusable(diagram, u, v):
        raise ValueError(f"vertices {u}, {v} are not fusable")
    diagram.add_to_phase(u, diagram.phases[v])
    diagram.remove_edge(u, v)
    for w, ty in list(diagram.edges[v].items()):
        diagram.remove_edge(v, w)
        diagram.add_edge_smart(u, w, ty)
    diagram.remove_vertex(v)


def check_identity(diagram: ZXDiagram, v: int) -> bool:
    return (
        not diagram.is_boundary(v)
        and diagram.phases[v].is_zero
        and diagram.degree(v) == 2
    )


def remove_identity(diagram: ZXDiagram, v: int) -> None:
    """Identity removal: a phase-free arity-2 spider is just a wire."""
    if not check_identity(diagram, v):
        raise ValueError(f"vertex {v} is not an identity spider")
    (a, ta), (b, tb) = list(diagram.edges[v].items())
    joined = (
        EdgeType.HADAMARD
        if (ta == EdgeType.HADAMARD) != (tb == EdgeType.HADAMARD)
        else EdgeType.SIMPLE
    )
    diagram.remove_vertex(v)
    diagram.add_edge_smart(a, b, joined)


def color_change(diagram: ZXDiagram, v: int) -> None:
    """Colour-change: flip a spider's colour, toggling all incident edges."""
    ty = diagram.types[v]
    if ty == VertexType.BOUNDARY:
        raise ValueError("cannot colour-change a boundary vertex")
    diagram.types[v] = VertexType.X if ty == VertexType.Z else VertexType.Z
    for u, ety in list(diagram.edges[v].items()):
        new = EdgeType.SIMPLE if ety == EdgeType.HADAMARD else EdgeType.HADAMARD
        diagram.edges[v][u] = new
        diagram.edges[u][v] = new


def _is_graph_like_spider(diagram: ZXDiagram, v: int) -> bool:
    return diagram.types[v] == VertexType.Z and all(
        diagram.edges[v][u] == EdgeType.HADAMARD or diagram.is_boundary(u)
        for u in diagram.edges[v]
    )


def check_local_complementation(diagram: ZXDiagram, v: int) -> bool:
    return (
        not diagram.is_boundary(v)
        and diagram.types[v] == VertexType.Z
        and diagram.phases[v].is_proper_clifford
        and diagram.is_interior(v)
        and all(ty == EdgeType.HADAMARD for ty in diagram.edges[v].values())
    )


def local_complementation(diagram: ZXDiagram, v: int) -> None:
    """Remove an interior ±pi/2 spider by complementing its neighbourhood.

    Graph-theoretic simplification rule of Duncan et al. (paper ref. [38]):
    the neighbours pairwise toggle their Hadamard edges and each loses the
    removed spider's phase.
    """
    if not check_local_complementation(diagram, v):
        raise ValueError(f"vertex {v} does not admit local complementation")
    phase = diagram.phases[v]
    neighbors = diagram.neighbors(v)
    for a, b in combinations(neighbors, 2):
        diagram.add_edge_smart(a, b, EdgeType.HADAMARD)
    for w in neighbors:
        diagram.add_to_phase(w, -phase)
    diagram.remove_vertex(v)


def check_pivot(diagram: ZXDiagram, u: int, v: int) -> bool:
    return (
        u != v
        and not diagram.is_boundary(u)
        and not diagram.is_boundary(v)
        and diagram.types[u] == VertexType.Z
        and diagram.types[v] == VertexType.Z
        and diagram.phases[u].is_pauli
        and diagram.phases[v].is_pauli
        and diagram.edge_type(u, v) == EdgeType.HADAMARD
        and diagram.is_interior(u)
        and diagram.is_interior(v)
        and all(ty == EdgeType.HADAMARD for ty in diagram.edges[u].values())
        and all(ty == EdgeType.HADAMARD for ty in diagram.edges[v].values())
    )


def pivot(diagram: ZXDiagram, u: int, v: int) -> None:
    """Pivot along an interior Pauli-Pauli Hadamard edge (ref. [38]).

    With ``A = N(u) \\ (N(v) ∪ {v})``, ``B = N(v) \\ (N(u) ∪ {u})`` and
    ``C = N(u) ∩ N(v)``: all edges between distinct sets toggle, B and C gain
    u's phase, A and C gain v's phase, C gains an extra pi, and u, v vanish.
    """
    if not check_pivot(diagram, u, v):
        raise ValueError(f"edge ({u}, {v}) does not admit a pivot")
    nu = set(diagram.neighbors(u)) - {v}
    nv = set(diagram.neighbors(v)) - {u}
    common = nu & nv
    only_u = nu - common
    only_v = nv - common
    phase_u = diagram.phases[u]
    phase_v = diagram.phases[v]
    for a in only_u:
        for b in only_v:
            diagram.add_edge_smart(a, b, EdgeType.HADAMARD)
    for a in only_u:
        for c in common:
            diagram.add_edge_smart(a, c, EdgeType.HADAMARD)
    for b in only_v:
        for c in common:
            diagram.add_edge_smart(b, c, EdgeType.HADAMARD)
    for b in only_v | common:
        diagram.add_to_phase(b, phase_u)
    for a in only_u | common:
        diagram.add_to_phase(a, phase_v)
    for c in common:
        diagram.add_to_phase(c, Phase(1))
    diagram.remove_vertex(u)
    diagram.remove_vertex(v)


def unfuse_phase_gadget(diagram: ZXDiagram, v: int) -> Tuple[int, int]:
    """Split a spider's phase off into a phase gadget.

    ``v`` keeps phase 0; a new hub (phase 0) hangs off ``v`` by a Hadamard
    edge and carries a leaf with the old phase.  Returns ``(hub, leaf)``.
    This makes ``v`` Pauli so a pivot can remove it (full_reduce's
    ``pivot_gadget`` step).
    """
    if diagram.is_boundary(v) or diagram.types[v] != VertexType.Z:
        raise ValueError("phase gadgets only unfuse from Z-spiders")
    phase = diagram.phases[v]
    diagram.set_phase(v, 0)
    hub = diagram.add_vertex(
        VertexType.Z, 0, qubit=diagram.qubit_of.get(v, 0) - 0.5,
        row=diagram.row_of.get(v, 0),
    )
    leaf = diagram.add_vertex(
        VertexType.Z, phase, qubit=diagram.qubit_of.get(v, 0) - 1.0,
        row=diagram.row_of.get(v, 0),
    )
    diagram.add_edge(v, hub, EdgeType.HADAMARD)
    diagram.add_edge(hub, leaf, EdgeType.HADAMARD)
    return hub, leaf


def find_phase_gadgets(diagram: ZXDiagram) -> List[Tuple[int, int, frozenset]]:
    """All ``(hub, leaf, support)`` phase gadgets in a graph-like diagram.

    A gadget is a degree-1 *leaf* spider Hadamard-connected to a phase-free
    *hub* spider; the hub's other neighbours form the gadget's support.
    """
    gadgets = []
    for leaf in diagram.spiders():
        if diagram.degree(leaf) != 1:
            continue
        (hub,) = diagram.neighbors(leaf)
        if diagram.is_boundary(hub) or diagram.types[hub] != VertexType.Z:
            continue
        if diagram.edge_type(leaf, hub) != EdgeType.HADAMARD:
            continue
        if not diagram.phases[hub].is_zero:
            continue
        support = frozenset(w for w in diagram.neighbors(hub) if w != leaf)
        if not support:
            continue
        if any(
            diagram.edge_type(hub, w) != EdgeType.HADAMARD for w in support
        ):
            continue
        gadgets.append((hub, leaf, support))
    return gadgets


def merge_phase_gadgets(
    diagram: ZXDiagram,
    first: Tuple[int, int, frozenset],
    second: Tuple[int, int, frozenset],
) -> None:
    """Fuse two phase gadgets with identical support: phases add."""
    hub1, leaf1, support1 = first
    hub2, leaf2, support2 = second
    if support1 != support2:
        raise ValueError("gadgets have different supports")
    diagram.add_to_phase(leaf1, diagram.phases[leaf2])
    diagram.remove_vertex(leaf2)
    diagram.remove_vertex(hub2)


def collapse_single_support_gadget(
    diagram: ZXDiagram, gadget: Tuple[int, int, frozenset]
) -> None:
    """A gadget supported on one spider is just a phase on that spider."""
    hub, leaf, support = gadget
    if len(support) != 1:
        raise ValueError("gadget support is not a single vertex")
    (w,) = support
    if diagram.is_boundary(w):
        raise ValueError("cannot collapse a gadget onto a boundary")
    diagram.add_to_phase(w, diagram.phases[leaf])
    diagram.remove_vertex(leaf)
    diagram.remove_vertex(hub)
