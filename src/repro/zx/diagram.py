"""ZX-diagrams: spiders, wires, and Hadamard edges (paper Sec. V).

A diagram is an open graph whose vertices are green Z-spiders, red
X-spiders, or boundary points (inputs/outputs), and whose edges are either
plain wires or wires carrying a Hadamard box.  Phases are multiples of pi,
stored exactly as :class:`fractions.Fraction` where possible so that
Clifford(+T) structure survives arbitrarily long rewrite chains.

Semantics are "up to global scalar": rewrite rules preserve the linear map
of the diagram up to a nonzero complex factor, which is the standard working
convention for automated ZX reasoning (and is verified against dense tensors
in the test suite).
"""

from __future__ import annotations

import math
from enum import Enum
from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union


class VertexType(Enum):
    BOUNDARY = 0
    Z = 1
    X = 2


class EdgeType(Enum):
    SIMPLE = 0
    HADAMARD = 1


PhaseLike = Union["Phase", Fraction, float, int]


class Phase:
    """An angle in units of pi, reduced mod 2.

    Exact :class:`Fraction` arithmetic is used whenever both operands are
    exact; mixing with a float degrades to float (with tolerance-based
    predicates).
    """

    __slots__ = ("value",)
    _TOL = 1e-9

    def __init__(self, value: Union[Fraction, float, int] = 0) -> None:
        if isinstance(value, Phase):
            value = value.value
        if isinstance(value, int):
            value = Fraction(value)
        if isinstance(value, Fraction):
            self.value: Union[Fraction, float] = value % 2
        else:
            value = float(value) % 2.0
            # Snap floats that are (numerically) small multiples of pi/4 or
            # other simple fractions back to exact arithmetic.
            snapped = Fraction(value).limit_denominator(64)
            if abs(float(snapped) - value) < 1e-12:
                self.value = snapped % 2
            else:
                self.value = value

    @classmethod
    def from_radians(cls, angle: float) -> "Phase":
        return cls(angle / math.pi)

    def to_radians(self) -> float:
        return float(self.value) * math.pi

    @property
    def is_exact(self) -> bool:
        return isinstance(self.value, Fraction)

    def __add__(self, other: PhaseLike) -> "Phase":
        other = other if isinstance(other, Phase) else Phase(other)
        if self.is_exact and other.is_exact:
            return Phase(self.value + other.value)
        return Phase(float(self.value) + float(other.value))

    def __neg__(self) -> "Phase":
        if self.is_exact:
            return Phase(-self.value)
        return Phase(-float(self.value))

    def __sub__(self, other: PhaseLike) -> "Phase":
        other = other if isinstance(other, Phase) else Phase(other)
        return self + (-other)

    def _close_to(self, target: float) -> bool:
        diff = (float(self.value) - target) % 2.0
        return diff < self._TOL or diff > 2.0 - self._TOL

    @property
    def is_zero(self) -> bool:
        return self._close_to(0.0)

    @property
    def is_pi(self) -> bool:
        return self._close_to(1.0)

    @property
    def is_pauli(self) -> bool:
        """Phase 0 or pi."""
        return self.is_zero or self.is_pi

    @property
    def is_clifford(self) -> bool:
        """Multiple of pi/2."""
        return self.is_pauli or self._close_to(0.5) or self._close_to(1.5)

    @property
    def is_proper_clifford(self) -> bool:
        """Exactly +-pi/2."""
        return self._close_to(0.5) or self._close_to(1.5)

    @property
    def is_t_like(self) -> bool:
        """An odd multiple of pi/4 (counts toward the T-count)."""
        return self.is_exact and self.value.denominator == 4

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (Phase, Fraction, float, int)):
            return NotImplemented
        other = other if isinstance(other, Phase) else Phase(other)
        diff = (float(self.value) - float(other.value)) % 2.0
        return diff < self._TOL or diff > 2.0 - self._TOL

    def __hash__(self) -> int:
        # Tolerant equality forbids a finer hash than the coarse bucket.
        return hash(round(float(self.value) * 4) % 8)

    def __repr__(self) -> str:
        if self.is_exact:
            return f"{self.value}π"
        return f"{float(self.value):.4f}π"


class ZXDiagram:
    """An open ZX-diagram with at most one edge per vertex pair.

    Parallel edges never need to be stored: the moment a second edge between
    two vertices appears (during rewriting), it resolves by the Hopf law or
    self-loop rules inside :meth:`add_edge_smart`.
    """

    def __init__(self) -> None:
        self._next_id = 0
        self.types: Dict[int, VertexType] = {}
        self.phases: Dict[int, Phase] = {}
        self.edges: Dict[int, Dict[int, EdgeType]] = {}
        self.inputs: List[int] = []
        self.outputs: List[int] = []
        # Layout hints for rendering only.
        self.qubit_of: Dict[int, float] = {}
        self.row_of: Dict[int, float] = {}

    # -- construction ---------------------------------------------------------

    def add_vertex(
        self,
        ty: VertexType,
        phase: PhaseLike = 0,
        qubit: float = 0.0,
        row: float = 0.0,
    ) -> int:
        v = self._next_id
        self._next_id += 1
        self.types[v] = ty
        self.phases[v] = phase if isinstance(phase, Phase) else Phase(phase)
        self.edges[v] = {}
        self.qubit_of[v] = qubit
        self.row_of[v] = row
        return v

    def add_edge(self, u: int, v: int, ty: EdgeType = EdgeType.SIMPLE) -> None:
        if u == v:
            raise ValueError("use add_edge_smart for self-loops")
        if v in self.edges[u]:
            raise ValueError(f"edge ({u}, {v}) already present; use add_edge_smart")
        self.edges[u][v] = ty
        self.edges[v][u] = ty

    def add_edge_smart(self, u: int, v: int, ty: EdgeType) -> None:
        """Add an edge, resolving self-loops and parallel edges by ZX laws.

        Only same-coloured (or boundary-free) situations arise in this
        library's rewrite pipeline:

        - simple self-loop on a spider: drop it,
        - Hadamard self-loop: drop it and add pi to the spider's phase,
        - two Hadamard edges between same-colour spiders: both vanish (Hopf),
        - Hadamard + simple between same-colour spiders: the pair resolves
          to a simple edge plus a pi phase (fuse, then Hadamard self-loop),
        - two simple edges between different-colour spiders: vanish (Hopf),
        - two simple edges between same-colour spiders: one survives (the
          second fuses into a plain self-loop, which drops).
        """
        if u == v:
            if ty == EdgeType.HADAMARD:
                self.phases[u] = self.phases[u] + Phase(1)
            return
        existing = self.edges[u].get(v)
        if existing is None:
            self.edges[u][v] = ty
            self.edges[v][u] = ty
            return
        tu, tv = self.types[u], self.types[v]
        same_colour = tu == tv and tu != VertexType.BOUNDARY
        if same_colour:
            if existing == EdgeType.HADAMARD and ty == EdgeType.HADAMARD:
                self.remove_edge(u, v)
            elif existing == EdgeType.SIMPLE and ty == EdgeType.SIMPLE:
                pass  # second simple edge fuses into a trivial self-loop
            else:
                # simple + hadamard -> simple edge, pi phase on one spider
                self.edges[u][v] = EdgeType.SIMPLE
                self.edges[v][u] = EdgeType.SIMPLE
                self.phases[u] = self.phases[u] + Phase(1)
        else:
            if tu == VertexType.BOUNDARY or tv == VertexType.BOUNDARY:
                raise ValueError("parallel edge onto a boundary vertex")
            # Different colours.
            if existing == EdgeType.SIMPLE and ty == EdgeType.SIMPLE:
                self.remove_edge(u, v)  # Hopf for Z-X
            elif existing == EdgeType.HADAMARD and ty == EdgeType.HADAMARD:
                pass  # H-H between Z-X == simple-simple after colour change
            else:
                # simple + hadamard between different colours: colour-change
                # view -> same-colour simple+simple: one simple survives as a
                # hadamard here.
                self.edges[u][v] = EdgeType.HADAMARD
                self.edges[v][u] = EdgeType.HADAMARD
                self.phases[u] = self.phases[u] + Phase(1)

    def remove_edge(self, u: int, v: int) -> None:
        self.edges[u].pop(v, None)
        self.edges[v].pop(u, None)

    def remove_vertex(self, v: int) -> None:
        for u in list(self.edges[v]):
            self.remove_edge(u, v)
        del self.edges[v]
        del self.types[v]
        del self.phases[v]
        self.qubit_of.pop(v, None)
        self.row_of.pop(v, None)
        if v in self.inputs:
            self.inputs.remove(v)
        if v in self.outputs:
            self.outputs.remove(v)

    # -- queries ----------------------------------------------------------------

    def vertices(self) -> List[int]:
        return list(self.types)

    def num_vertices(self) -> int:
        return len(self.types)

    def num_edges(self) -> int:
        return sum(len(n) for n in self.edges.values()) // 2

    def neighbors(self, v: int) -> List[int]:
        return list(self.edges[v])

    def degree(self, v: int) -> int:
        return len(self.edges[v])

    def edge_type(self, u: int, v: int) -> Optional[EdgeType]:
        return self.edges[u].get(v)

    def edge_list(self) -> List[Tuple[int, int, EdgeType]]:
        out = []
        for u, nbrs in self.edges.items():
            for v, ty in nbrs.items():
                if u < v:
                    out.append((u, v, ty))
        return out

    def spiders(self) -> List[int]:
        return [v for v, ty in self.types.items() if ty != VertexType.BOUNDARY]

    def phase(self, v: int) -> Phase:
        return self.phases[v]

    def set_phase(self, v: int, phase: PhaseLike) -> None:
        self.phases[v] = phase if isinstance(phase, Phase) else Phase(phase)

    def add_to_phase(self, v: int, phase: PhaseLike) -> None:
        self.phases[v] = self.phases[v] + (
            phase if isinstance(phase, Phase) else Phase(phase)
        )

    def is_boundary(self, v: int) -> bool:
        return self.types[v] == VertexType.BOUNDARY

    def is_interior(self, v: int) -> bool:
        """A spider none of whose neighbours is a boundary vertex."""
        return not self.is_boundary(v) and all(
            not self.is_boundary(u) for u in self.edges[v]
        )

    def t_count(self) -> int:
        return sum(1 for v in self.spiders() if self.phases[v].is_t_like)

    def non_clifford_count(self) -> int:
        return sum(1 for v in self.spiders() if not self.phases[v].is_clifford)

    # -- bulk helpers -------------------------------------------------------------

    def copy(self) -> "ZXDiagram":
        dup = ZXDiagram()
        dup._next_id = self._next_id
        dup.types = dict(self.types)
        dup.phases = dict(self.phases)
        dup.edges = {v: dict(nbrs) for v, nbrs in self.edges.items()}
        dup.inputs = list(self.inputs)
        dup.outputs = list(self.outputs)
        dup.qubit_of = dict(self.qubit_of)
        dup.row_of = dict(self.row_of)
        return dup

    def compose(self, other: "ZXDiagram") -> "ZXDiagram":
        """Sequential composition: ``other`` after ``self`` (new diagram).

        ``self``'s outputs are glued to ``other``'s inputs wire by wire.
        """
        if len(self.outputs) != len(other.inputs):
            raise ValueError("composition arity mismatch")
        result = self.copy()
        mapping: Dict[int, int] = {}
        for v in other.vertices():
            mapping[v] = result.add_vertex(
                other.types[v],
                other.phases[v],
                other.qubit_of.get(v, 0.0),
                other.row_of.get(v, 0.0),
            )
        for u, v, ty in other.edge_list():
            result.add_edge(mapping[u], mapping[v], ty)
        # Glue: out_i -- in_i become a single wire.  Each boundary vertex has
        # exactly one incident edge; joining two wires XORs their Hadamard
        # markers.  Processing sequentially keeps chained glue points valid.
        glue_pairs = list(zip(list(result.outputs), [mapping[v] for v in other.inputs]))
        for out_v, in_v in glue_pairs:
            ((out_nbr, out_ty),) = list(result.edges[out_v].items())
            ((in_nbr, in_ty),) = list(result.edges[in_v].items())
            joined = (
                EdgeType.HADAMARD
                if (out_ty == EdgeType.HADAMARD) != (in_ty == EdgeType.HADAMARD)
                else EdgeType.SIMPLE
            )
            result.remove_vertex(out_v)
            result.remove_vertex(in_v)
            if out_nbr == in_v:
                # self's output wire ran straight into the glue point pair;
                # after removal the surviving neighbour is on the other side.
                raise ValueError("degenerate composition wire")
            result.add_edge_smart(out_nbr, in_nbr, joined)
        result.outputs = [mapping[v] for v in other.outputs]
        return result

    def adjoint(self) -> "ZXDiagram":
        """The dagger diagram: phases negated, inputs and outputs swapped."""
        dag = self.copy()
        for v in dag.spiders():
            dag.phases[v] = -dag.phases[v]
        dag.inputs, dag.outputs = dag.outputs, dag.inputs
        return dag

    def stats(self) -> Dict[str, int]:
        return {
            "vertices": self.num_vertices(),
            "edges": self.num_edges(),
            "spiders": len(self.spiders()),
            "t_count": self.t_count(),
            "non_clifford": self.non_clifford_count(),
        }

    def __repr__(self) -> str:
        return (
            f"ZXDiagram({len(self.spiders())} spiders, {self.num_edges()} edges, "
            f"{len(self.inputs)}->{len(self.outputs)})"
        )
