"""Distributed shard serving: wire protocol, shard workers, cluster client.

See :mod:`repro.service.remote.wire` for the frame protocol,
:mod:`repro.service.remote.shard` for the worker process,
:mod:`repro.service.remote.cluster` for the cache-affinity scheduler,
and :mod:`repro.service.remote.faults` for deterministic fault
injection (``REPRO_FAULTS``).
"""

from .cluster import (
    SHARDS_ENV_VAR,
    ClusterScheduler,
    HashRing,
    LocalCluster,
    ShardProcess,
    parse_address,
    routing_key,
    shard_addresses,
    shard_count,
)
from .faults import FAULTS_ENV_VAR, FaultPlan, parse_faults
from .shard import ShardServer
from .wire import (
    WIRE_FORMAT_VERSION,
    CorruptFrame,
    ProtocolError,
    RemoteExecutionError,
    WireError,
)

__all__ = [
    "FAULTS_ENV_VAR",
    "SHARDS_ENV_VAR",
    "WIRE_FORMAT_VERSION",
    "ClusterScheduler",
    "CorruptFrame",
    "FaultPlan",
    "HashRing",
    "LocalCluster",
    "ProtocolError",
    "RemoteExecutionError",
    "ShardProcess",
    "ShardServer",
    "WireError",
    "parse_address",
    "parse_faults",
    "routing_key",
    "shard_addresses",
    "shard_count",
]
