"""Cluster scheduler: cache-affinity routing with fault-tolerant RPC.

The client half of the distributed serving tier.  A
:class:`ClusterScheduler` holds a set of shard addresses and routes each
:class:`~repro.service.jobs.JobSpec` by consistent-hashing the job's
*result-cache content key* (the same key
:mod:`repro.service.cache` stores results under).  Identical work
therefore lands on the same shard run after run, so a resubmitted batch
is answered from that shard's warm cache without executing anything —
cache affinity is the scheduling policy, not an optimization pass.

Failure semantics, in escalation order:

1. **Retry** — a transport failure (refused/reset connection, request
   timeout, corrupt frame) retries the same shard up to ``retries``
   times with exponential backoff and jitter.  Application-level
   failures (the job itself raised) are deterministic and are returned
   immediately, never retried.
2. **Failover** — a shard that exhausts its retries is marked failed;
   after ``evict_after`` consecutive failed requests it is evicted from
   the ring and the job fails over to the next shard on the ring.
3. **Local fallback** — with no healthy shard left, the scheduler
   degrades to in-process execution through
   :func:`~repro.service.engine.execute_job`, so a dead cluster slows
   answers down rather than losing them.

A background probe pings evicted shards every ``probe_interval_s`` and
readmits them on a successful heartbeat.  Every routed job carries its
full attempt chain in ``metadata["cluster"]`` for audit, and the RPC
layer feeds ``cluster.rpc.latency_s`` / ``cluster.retries`` /
``cluster.failovers`` / ``cluster.local_fallbacks`` in
:mod:`repro.obs.metrics`.

:class:`ShardProcess` and :class:`LocalCluster` spawn real shard worker
processes (``python -m repro.service.remote.shard``) for tests,
benchmarks, and the ``REPRO_SHARDS`` CI profile.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import os
import random
import subprocess
import sys
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ...obs import metrics as obs_metrics
from .. import cache as service_cache
from ..engine import (
    DONE,
    FAILED,
    JobResult,
    _cache_extra,
    _cache_lookup,
    _TASK_CAPABILITY,
    execute_job,
    result_metadata,
)
from ..jobs import JobBatch, JobSpec, canonical_json
from . import wire
from .shard import decode_job_result

SHARDS_ENV_VAR = "REPRO_SHARDS"
"""Cluster sizing/addressing knob.

An integer ``N`` asks test/CI harnesses to stand up ``N`` local shard
processes; a comma-separated list of ``tcp://host:port`` /
``unix:///path`` addresses points at an existing fleet.
"""

DEFAULT_VNODES = 64


def routing_key(job: JobSpec) -> str:
    """The consistent-hash key for a job: its cache content key.

    Falls back to a hash of the job's canonical JSON form for jobs the
    cache cannot key (e.g. traced runs) — those still route
    deterministically, they just cannot be cache-warm.
    """
    key = service_cache.request_key(
        job.circuit,
        job.backend,
        _TASK_CAPABILITY[job.task],
        job.options,
        _cache_extra(job),
    )
    if key is not None:
        return key
    payload = dict(job.to_dict())
    payload.pop("job_id", None)
    payload.pop("submitted_at", None)
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return "route:" + digest.hexdigest()


def parse_address(address: str) -> Tuple[str, Any]:
    """Split ``tcp://host:port`` / ``unix:///path`` into (scheme, target)."""
    if address.startswith("unix://"):
        return "unix", address[len("unix://"):]
    if address.startswith("tcp://"):
        rest = address[len("tcp://"):]
        host, _, port = rest.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"malformed shard address {address!r}")
        return "tcp", (host, int(port))
    raise ValueError(
        f"shard address {address!r} must start with tcp:// or unix://"
    )


def shard_addresses(env: Optional[str] = None) -> Optional[List[str]]:
    """Addresses from ``REPRO_SHARDS``, or ``None`` if it is a count/unset."""
    spec = os.environ.get(SHARDS_ENV_VAR, "") if env is None else env
    spec = spec.strip()
    if not spec or "://" not in spec:
        return None
    return [part.strip() for part in spec.split(",") if part.strip()]


def shard_count(env: Optional[str] = None) -> int:
    """Shard count from ``REPRO_SHARDS`` (0 = distributed serving off)."""
    spec = os.environ.get(SHARDS_ENV_VAR, "") if env is None else env
    spec = spec.strip()
    if not spec:
        return 0
    if "://" in spec:
        return len(shard_addresses(spec) or ())
    try:
        return max(0, int(spec))
    except ValueError:
        return 0


class HashRing:
    """Consistent-hash ring with virtual nodes over shard addresses."""

    def __init__(
        self, addresses: Sequence[str], vnodes: int = DEFAULT_VNODES
    ) -> None:
        self.vnodes = int(vnodes)
        self._points: List[Tuple[int, str]] = []
        for address in addresses:
            for i in range(self.vnodes):
                token = hashlib.sha256(
                    f"{address}#{i}".encode("utf-8")
                ).digest()
                self._points.append(
                    (int.from_bytes(token[:8], "big"), address)
                )
        self._points.sort()
        self._keys = [point for point, _ in self._points]

    def __len__(self) -> int:
        return len({address for _, address in self._points})

    def preference(self, key: str) -> List[str]:
        """All distinct shards, in ring order from ``key``'s position.

        The first entry is the primary (cache-owning) shard; the rest is
        the failover order, so every job has a deterministic full
        itinerary.
        """
        if not self._points:
            return []
        token = hashlib.sha256(key.encode("utf-8")).digest()
        start = bisect.bisect(
            self._keys, int.from_bytes(token[:8], "big")
        ) % len(self._points)
        seen: List[str] = []
        for offset in range(len(self._points)):
            _, address = self._points[(start + offset) % len(self._points)]
            if address not in seen:
                seen.append(address)
        return seen

    def route(self, key: str) -> Optional[str]:
        order = self.preference(key)
        return order[0] if order else None


class ShardState:
    """Client-side view of one shard's health."""

    __slots__ = ("address", "healthy", "failures", "heartbeat", "routed")

    def __init__(self, address: str) -> None:
        self.address = address
        self.healthy = True
        self.failures = 0
        self.heartbeat: Optional[Dict[str, Any]] = None
        self.routed = 0


class ClusterScheduler:
    """Route jobs across shards with retry, failover, and local fallback."""

    def __init__(
        self,
        addresses: Sequence[str],
        *,
        timeout_s: float = 60.0,
        connect_timeout_s: float = 5.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        backoff_max_s: float = 1.0,
        jitter: float = 0.25,
        evict_after: int = 2,
        probe_interval_s: float = 0.25,
        local_fallback: bool = True,
        vnodes: int = DEFAULT_VNODES,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.shards: Dict[str, ShardState] = {
            address: ShardState(address) for address in addresses
        }
        self.timeout_s = float(timeout_s)
        self.connect_timeout_s = float(connect_timeout_s)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.backoff_max_s = float(backoff_max_s)
        self.jitter = float(jitter)
        self.evict_after = int(evict_after)
        self.probe_interval_s = float(probe_interval_s)
        self.local_fallback = bool(local_fallback)
        self.vnodes = int(vnodes)
        self._rng = rng or random.Random()
        self._frame_id = 0
        self._probe_task: Optional[asyncio.Task] = None
        self.local_fallbacks = 0
        self.failovers = 0
        self.retries_done = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "ClusterScheduler":
        if self._probe_task is None and self.shards:
            self._probe_task = asyncio.create_task(self._probe_loop())
        return self

    async def stop(self) -> None:
        task, self._probe_task = self._probe_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    async def __aenter__(self) -> "ClusterScheduler":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.stop()
        return False

    # -- introspection -------------------------------------------------------

    def healthy_addresses(self) -> List[str]:
        return [s.address for s in self.shards.values() if s.healthy]

    def ring(self) -> HashRing:
        return HashRing(self.healthy_addresses(), vnodes=self.vnodes)

    def stats(self) -> Dict[str, Any]:
        return {
            "shards": {
                state.address: {
                    "healthy": state.healthy,
                    "failures": state.failures,
                    "routed": state.routed,
                    "heartbeat": state.heartbeat,
                }
                for state in self.shards.values()
            },
            "retries": self.retries_done,
            "failovers": self.failovers,
            "local_fallbacks": self.local_fallbacks,
        }

    # -- health --------------------------------------------------------------

    async def ping(self, address: str) -> Optional[Dict[str, Any]]:
        """One heartbeat round trip; ``None`` if the shard is unreachable."""
        try:
            frame = await asyncio.wait_for(
                self._request(address, self._make_request("ping")),
                timeout=self.connect_timeout_s + self.timeout_s,
            )
        except _TRANSPORT_ERRORS:
            return None
        except asyncio.TimeoutError:
            return None
        if frame.get("kind") != wire.HEARTBEAT:
            return None
        return frame.get("shard")

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.sleep(self.probe_interval_s)
            for state in list(self.shards.values()):
                if state.healthy:
                    continue
                beat = await self.ping(state.address)
                if beat is not None:
                    state.healthy = True
                    state.failures = 0
                    state.heartbeat = beat
                    obs_metrics.counter_add(
                        obs_metrics.CLUSTER_SHARD_READMISSIONS
                    )

    def _note_failure(self, state: ShardState) -> None:
        state.failures += 1
        if state.healthy and state.failures >= self.evict_after:
            state.healthy = False
            obs_metrics.counter_add(obs_metrics.CLUSTER_SHARD_EVICTIONS)

    def _note_success(self, state: ShardState) -> None:
        state.failures = 0
        state.healthy = True
        state.routed += 1

    # -- transport -----------------------------------------------------------

    def _make_request(self, op: str, **payload: Any) -> Dict[str, Any]:
        self._frame_id += 1
        return wire.make_frame(
            wire.REQUEST, id=self._frame_id, op=op, **payload
        )

    async def _request(
        self,
        address: str,
        frame: Dict[str, Any],
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """One request/response round trip on a fresh connection.

        Raises a transport error (ConnectionError/OSError/CorruptFrame/
        TimeoutError) for anything that justifies a retry; returns the
        terminal response/heartbeat frame otherwise.
        """
        scheme, target = parse_address(address)
        if scheme == "unix":
            opener = asyncio.open_unix_connection(target)
        else:
            opener = asyncio.open_connection(*target)
        reader, writer = await asyncio.wait_for(
            opener, timeout=self.connect_timeout_s
        )
        try:
            await wire.write_frame(writer, frame)
            while True:
                reply = await wire.read_frame(reader)
                if reply is None:
                    raise ConnectionResetError(
                        f"shard {address} closed the connection mid-request"
                    )
                kind = reply.get("kind")
                if kind == wire.EVENT:
                    if on_event is not None:
                        on_event(reply.get("event") or {})
                    continue
                if kind in (wire.RESPONSE, wire.HEARTBEAT):
                    return reply
                raise wire.ProtocolError(
                    f"unexpected frame kind {kind!r} from shard"
                )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _backoff(self, attempt: int) -> float:
        base = min(self.backoff_max_s, self.backoff_s * (2.0 ** attempt))
        return base * (1.0 + self.jitter * self._rng.random())

    # -- scheduling ----------------------------------------------------------

    async def submit(
        self,
        job: JobSpec,
        *,
        stream: bool = False,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> JobResult:
        """Execute one job on the cluster; never raises for job failures.

        The returned :class:`~repro.service.engine.JobResult` matches
        what the local :class:`~repro.service.engine.SimulationService`
        would produce for the same job, with the routing audit injected
        as ``metadata["cluster"]`` on successful results.
        """
        key = routing_key(job)
        attempts: List[Dict[str, Any]] = []
        request = self._make_request(
            "submit", job=job.to_dict(), stream=bool(stream)
        )
        itinerary = self.ring().preference(key)
        for rank, address in enumerate(itinerary):
            state = self.shards[address]
            if not state.healthy:
                continue
            if rank > 0:
                self.failovers += 1
                obs_metrics.counter_add(obs_metrics.CLUSTER_FAILOVERS)
            outcome = await self._submit_to_shard(
                state, request, attempts, on_event
            )
            if outcome is not None:
                self._finish(outcome, key, address, attempts)
                return outcome
        return await self._run_local(job, key, attempts)

    async def _submit_to_shard(
        self,
        state: ShardState,
        request: Dict[str, Any],
        attempts: List[Dict[str, Any]],
        on_event: Optional[Callable[[Dict[str, Any]], None]],
    ) -> Optional[JobResult]:
        """Try one shard with retry/backoff; ``None`` means move on."""
        for attempt in range(self.retries + 1):
            started = time.monotonic()
            try:
                reply = await asyncio.wait_for(
                    self._request(state.address, request, on_event),
                    timeout=self.timeout_s,
                )
            except (asyncio.TimeoutError, *_TRANSPORT_ERRORS) as exc:
                obs_metrics.observe(
                    obs_metrics.CLUSTER_RPC_LATENCY_S,
                    time.monotonic() - started,
                )
                attempts.append(
                    {
                        "shard": state.address,
                        "attempt": attempt,
                        "outcome": f"{type(exc).__name__}: {exc}",
                    }
                )
                self._note_failure(state)
                if not state.healthy:
                    return None
                if attempt < self.retries:
                    self.retries_done += 1
                    obs_metrics.counter_add(obs_metrics.CLUSTER_RETRIES)
                    await asyncio.sleep(self._backoff(attempt))
                continue
            obs_metrics.observe(
                obs_metrics.CLUSTER_RPC_LATENCY_S,
                time.monotonic() - started,
            )
            if not reply.get("ok", False):
                # The shard answered: this is a deterministic
                # application-level refusal, not a transport fault.
                error = reply.get("error")
                attempts.append(
                    {
                        "shard": state.address,
                        "attempt": attempt,
                        "outcome": "error",
                    }
                )
                self._note_success(state)
                return JobResult(
                    job_id=str(request.get("job", {}).get("job_id", "")),
                    status=FAILED,
                    error=(
                        wire.decode_exception(error)
                        if error is not None
                        else wire.RemoteExecutionError("shard refused job")
                    ),
                )
            attempts.append(
                {
                    "shard": state.address,
                    "attempt": attempt,
                    "outcome": "ok",
                }
            )
            self._note_success(state)
            return decode_job_result(reply["result"])
        return None

    def _finish(
        self,
        outcome: JobResult,
        key: str,
        address: str,
        attempts: List[Dict[str, Any]],
    ) -> None:
        if outcome.value is not None:
            meta = result_metadata(outcome.value)
            if isinstance(meta, dict):
                meta["cluster"] = {
                    "key": key,
                    "shard": address,
                    "cache_hit": bool(outcome.cache_hit),
                    "attempts": attempts,
                }

    async def _run_local(
        self,
        job: JobSpec,
        key: str,
        attempts: List[Dict[str, Any]],
    ) -> JobResult:
        """Graceful degradation: no healthy shard, execute in-process."""
        self.local_fallbacks += 1
        obs_metrics.counter_add(obs_metrics.CLUSTER_LOCAL_FALLBACKS)
        attempts.append({"shard": None, "outcome": "local"})
        hit = _cache_lookup(job)
        cache_hit = hit is not None
        try:
            if hit is not None:
                value = hit
            else:
                value = await asyncio.to_thread(execute_job, job)
        except BaseException as exc:  # noqa: BLE001 - job errors are data
            return JobResult(job_id=job.job_id, status=FAILED, error=exc)
        outcome = JobResult(
            job_id=job.job_id, status=DONE, value=value, cache_hit=cache_hit
        )
        self._finish(outcome, key, "local", attempts)
        return outcome

    async def submit_batch(
        self, batch: JobBatch, *, stream: bool = False
    ) -> List[JobResult]:
        """Execute a whole batch concurrently, results in batch order."""
        return list(
            await asyncio.gather(
                *(self.submit(job, stream=stream) for job in batch.jobs)
            )
        )

    async def shutdown_shards(self) -> None:
        """Ask every reachable shard to stop serving (best effort)."""
        for state in self.shards.values():
            try:
                await asyncio.wait_for(
                    self._request(
                        state.address, self._make_request("shutdown")
                    ),
                    timeout=self.connect_timeout_s,
                )
            except (asyncio.TimeoutError, *_TRANSPORT_ERRORS):
                continue


_TRANSPORT_ERRORS = (
    ConnectionError,
    BrokenPipeError,
    OSError,
    EOFError,
    wire.CorruptFrame,
    wire.ProtocolError,
)


class ShardProcess:
    """One shard worker subprocess (``python -m repro.service.remote.shard``)."""

    def __init__(
        self,
        *,
        unix_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 2,
        executor: str = "thread",
        env: Optional[Dict[str, str]] = None,
        ready_timeout_s: float = 30.0,
    ) -> None:
        self.unix_path = unix_path
        self.host = host
        self.port = int(port)
        self.max_workers = int(max_workers)
        self.executor = executor
        self.extra_env = dict(env or {})
        self.ready_timeout_s = float(ready_timeout_s)
        self.proc: Optional[subprocess.Popen] = None
        self.address: Optional[str] = None

    def start(self) -> "ShardProcess":
        if self.proc is not None:
            return self
        argv = [
            sys.executable,
            "-m",
            "repro.service.remote.shard",
            "--workers",
            str(self.max_workers),
            "--executor",
            self.executor,
        ]
        if self.unix_path is not None:
            argv += ["--unix", self.unix_path]
        else:
            argv += ["--host", self.host, "--port", str(self.port)]
        env = dict(os.environ)
        # The child must resolve the same `repro` package as this
        # process, wherever the test/bench harness put it.
        package_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)
            )))
        )
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing else package_root
        )
        env.update(self.extra_env)
        self.proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        deadline = time.monotonic() + self.ready_timeout_s
        line = ""
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if line.startswith("READY "):
                self.address = line[len("READY "):].strip()
                return self
            if not line and self.proc.poll() is not None:
                break
        self.stop()
        raise RuntimeError(
            f"shard process did not become ready (last output {line!r})"
        )

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL immediately (fault tests); still call :meth:`stop` after."""
        if self.proc is not None:
            try:
                self.proc.kill()
            except OSError:
                pass

    def stop(self) -> None:
        proc, self.proc = self.proc, None
        if proc is not None:
            if proc.stdout is not None:
                proc.stdout.close()
            from ...parallel import reap_process

            reap_process(proc)
        if self.unix_path is not None:
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass

    def __enter__(self) -> "ShardProcess":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


class LocalCluster:
    """N local shard processes plus a scheduler wired to them.

    Each shard gets its **own** result-cache directory (under a private
    temp dir), so warm hits only happen when routing actually lands on
    the shard that computed the result — the property the affinity
    benchmark measures.  Pass ``shared_cache=True`` for a fleet that
    shares one disk cache instead (the cross-process coherence setup).
    """

    def __init__(
        self,
        n_shards: Optional[int] = None,
        *,
        max_workers: int = 2,
        executor: str = "thread",
        cache: bool = True,
        shared_cache: bool = False,
        shard_env: Optional[Dict[str, str]] = None,
        scheduler_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        # Default fleet size honors the REPRO_SHARDS CI/test profile.
        self.n_shards = (
            int(n_shards) if n_shards is not None else (shard_count() or 2)
        )
        self.max_workers = int(max_workers)
        self.executor = executor
        self.cache = bool(cache)
        self.shared_cache = bool(shared_cache)
        self.shard_env = dict(shard_env or {})
        self.scheduler_kwargs = dict(scheduler_kwargs or {})
        self.tmpdir: Optional[tempfile.TemporaryDirectory] = None
        self.processes: List[ShardProcess] = []
        self.scheduler: Optional[ClusterScheduler] = None

    def start_processes(self) -> List[ShardProcess]:
        if self.processes:
            return self.processes
        self.tmpdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        root = self.tmpdir.name
        for i in range(self.n_shards):
            env = dict(self.shard_env)
            if self.cache:
                env.setdefault("REPRO_CACHE", "1")
                cache_dir = (
                    os.path.join(root, "cache-shared")
                    if self.shared_cache
                    else os.path.join(root, f"cache-{i}")
                )
                env.setdefault("REPRO_CACHE_DIR", cache_dir)
            proc = ShardProcess(
                unix_path=os.path.join(root, f"shard-{i}.sock"),
                max_workers=self.max_workers,
                executor=self.executor,
                env=env,
            )
            proc.start()
            self.processes.append(proc)
        return self.processes

    async def start(self) -> ClusterScheduler:
        await asyncio.to_thread(self.start_processes)
        self.scheduler = ClusterScheduler(
            [proc.address for proc in self.processes],
            **self.scheduler_kwargs,
        )
        await self.scheduler.start()
        return self.scheduler

    async def stop(self) -> None:
        scheduler, self.scheduler = self.scheduler, None
        if scheduler is not None:
            await scheduler.stop()
        await asyncio.to_thread(self.stop_processes)

    def stop_processes(self) -> None:
        processes, self.processes = self.processes, []
        for proc in processes:
            proc.stop()
        tmpdir, self.tmpdir = self.tmpdir, None
        if tmpdir is not None:
            tmpdir.cleanup()

    async def __aenter__(self) -> ClusterScheduler:
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.stop()
        return False


__all__ = [
    "SHARDS_ENV_VAR",
    "ClusterScheduler",
    "HashRing",
    "LocalCluster",
    "ShardProcess",
    "ShardState",
    "parse_address",
    "routing_key",
    "shard_addresses",
    "shard_count",
]
