"""Deterministic fault injection for the shard serving path.

Distributed failure handling is only trustworthy if the failures are
reproducible, so instead of flaky "pull the cable" tests this module
gives the shard server a small set of counted fault hooks, switched on
by the ``REPRO_FAULTS`` environment variable (which a test sets in a
shard subprocess's environment) or installed programmatically with
:func:`install`:

``REPRO_FAULTS`` is a comma-separated ``key=value`` spec:

- ``kill_after=N`` — SIGKILL this process shortly after it has received
  its ``N``-th request frame (the "shard crashes mid-job" scenario: the
  job is accepted and executing when the process dies, so the client
  sees the connection reset with no response);
- ``corrupt_first=N`` — flip bytes inside the payload of the first
  ``N`` outgoing frames *after* the CRC header is computed, so the
  receiver's checksum fails (:class:`~repro.service.remote.wire.CorruptFrame`);
- ``drop_first=N`` — silently discard the first ``N`` outgoing frames
  (the response vanishes; the client times out);
- ``delay_s=X`` — sleep ``X`` seconds before every outgoing frame (the
  slow-network scenario; with a client timeout below ``X`` this is a
  deterministic request timeout);
- ``kill_delay_s=X`` — how long after the triggering frame the
  ``kill_after`` SIGKILL lands (default 0.05 s, long enough for the
  job to be genuinely in flight).

All counters are per-process and monotonic, so a shard configured with
``corrupt_first=1`` serves its second attempt cleanly — exactly the
retry-then-succeed path the cluster scheduler's backoff test needs.
An empty/unset spec is the (default) no-op plan, whose hooks cost one
attribute check per frame.
"""

from __future__ import annotations

import asyncio
import os
import signal
from typing import Optional

FAULTS_ENV_VAR = "REPRO_FAULTS"
"""Fault-injection spec for this process (see module docstring)."""


class FaultPlan:
    """Counted fault hooks the shard server consults on every frame."""

    def __init__(
        self,
        kill_after: int = 0,
        corrupt_first: int = 0,
        drop_first: int = 0,
        delay_s: float = 0.0,
        kill_delay_s: float = 0.05,
    ) -> None:
        self.kill_after = int(kill_after)
        self.corrupt_first = int(corrupt_first)
        self.drop_first = int(drop_first)
        self.delay_s = float(delay_s)
        self.kill_delay_s = float(kill_delay_s)
        self.frames_received = 0
        self.frames_sent = 0
        self.corrupted = 0
        self.dropped = 0
        self._kill_armed = False

    @property
    def is_noop(self) -> bool:
        return (
            self.kill_after <= 0
            and self.corrupt_first <= 0
            and self.drop_first <= 0
            and self.delay_s <= 0.0
        )

    # -- inbound hook --------------------------------------------------------

    def note_request(self) -> None:
        """Count one received request frame; arm the SIGKILL when due.

        The kill is scheduled ``kill_delay_s`` later on the event loop
        rather than raised inline, so the triggering job is genuinely
        mid-execution when the process dies — the crash the recovery
        tests need is "shard accepted work and vanished", not "shard
        refused work".
        """
        self.frames_received += 1
        if (
            self.kill_after > 0
            and not self._kill_armed
            and self.frames_received >= self.kill_after
        ):
            self._kill_armed = True
            loop = asyncio.get_event_loop()
            loop.call_later(
                self.kill_delay_s, os.kill, os.getpid(), signal.SIGKILL
            )

    # -- outbound hook -------------------------------------------------------

    async def transform_outgoing(self, data: bytes) -> Optional[bytes]:
        """Apply delay/corrupt/drop to one encoded outgoing frame.

        Returns the (possibly mangled) bytes to write, or ``None`` to
        drop the frame entirely.
        """
        if self.delay_s > 0.0:
            await asyncio.sleep(self.delay_s)
        self.frames_sent += 1
        if self.dropped < self.drop_first:
            self.dropped += 1
            return None
        if self.corrupted < self.corrupt_first:
            self.corrupted += 1
            return corrupt_bytes(data)
        return data


def corrupt_bytes(data: bytes) -> bytes:
    """Flip bits in the middle of a frame's payload, keeping the header.

    The 8-byte header (length + CRC) is preserved so the receiver reads
    the full payload and then fails the checksum — the detection path
    under test — rather than desynchronizing on a wrong length.
    """
    if len(data) <= 8:
        return data
    mangled = bytearray(data)
    position = 8 + (len(data) - 8) // 2
    mangled[position] ^= 0xFF
    return bytes(mangled)


def parse_faults(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`."""
    plan = FaultPlan()
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"malformed {FAULTS_ENV_VAR} entry {part!r} "
                "(expected key=value)"
            )
        key, _, raw = part.partition("=")
        key = key.strip()
        raw = raw.strip()
        if key in ("kill_after", "corrupt_first", "drop_first"):
            setattr(plan, key, int(raw))
        elif key in ("delay_s", "kill_delay_s"):
            setattr(plan, key, float(raw))
        else:
            raise ValueError(
                f"unknown {FAULTS_ENV_VAR} key {key!r}; choose from "
                "kill_after, corrupt_first, drop_first, delay_s, "
                "kill_delay_s"
            )
    return plan


_installed: Optional[FaultPlan] = None
_env_plan: Optional[FaultPlan] = None
_env_spec: Optional[str] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Install a plan programmatically (tests); ``None`` restores the env."""
    global _installed
    _installed = plan


def active() -> FaultPlan:
    """The plan in force: the installed one, else parsed from the env.

    The env-derived plan is memoized per spec string so its counters
    persist across calls — ``corrupt_first=1`` means one corrupted frame
    per *process*, not one per lookup.
    """
    global _env_plan, _env_spec
    if _installed is not None:
        return _installed
    spec = os.environ.get(FAULTS_ENV_VAR, "").strip()
    if not spec:
        return _NOOP
    if _env_plan is None or _env_spec != spec:
        _env_plan = parse_faults(spec)
        _env_spec = spec
    return _env_plan


_NOOP = FaultPlan()


__all__ = [
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "active",
    "corrupt_bytes",
    "install",
    "parse_faults",
]
