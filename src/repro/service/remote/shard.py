"""Shard worker: an asyncio socket server around one SimulationService.

A shard is the unit of the distributed fleet — one process, one
:class:`~repro.service.engine.SimulationService` (so quotas, budget
intersection, the result cache, priority scheduling, and progress
streaming all apply exactly as in-process), and one asyncio server
speaking the :mod:`~repro.service.remote.wire` frame protocol over TCP
or a Unix socket.

Per connection, the shard multiplexes: every request frame carries an
``id``, each ``submit`` runs as its own asyncio task, and all frames the
shard sends back (events, responses, heartbeats) echo the request's
``id`` under a per-connection write lock.  A ``submit`` with
``stream=true`` forwards the job's live
:class:`~repro.obs.progress.ProgressEvent` stream as ``event`` frames
before the terminal ``response``; ``ping`` answers with a ``heartbeat``
carrying the shard's load (inflight jobs, queue depth), its result-cache
stats (the cluster scheduler's cache-affinity diagnostics), pid, and
uptime.  A client that disconnects mid-job gets its outstanding jobs
cancelled through the service's cooperative-cancellation path, so an
abandoned connection never strands a worker slot.

Run standalone (the form :class:`~repro.service.remote.cluster.ShardProcess`
spawns)::

    python -m repro.service.remote.shard --port 0        # TCP, OS port
    python -m repro.service.remote.shard --unix /tmp/s1  # Unix socket

The process prints ``READY <address>`` on stdout once listening.  Fault
injection (``REPRO_FAULTS``) hooks the frame read/write paths — see
:mod:`repro.service.remote.faults`.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import time
from typing import Any, Dict, Optional

from ...obs import metrics as obs_metrics
from .. import cache as service_cache
from ..engine import FAILED, JobResult, SimulationService
from ..jobs import JobSpec
from ..queue import TenantQuota
from . import faults as faults_mod
from . import wire


def encode_job_result(outcome: JobResult) -> Dict[str, Any]:
    """Wire form of one terminal :class:`~repro.service.engine.JobResult`."""
    data: Dict[str, Any] = {
        "job_id": outcome.job_id,
        "status": outcome.status,
        "cache_hit": bool(outcome.cache_hit),
    }
    if outcome.value is not None:
        data["value"] = wire.encode_value(outcome.value, strict=False)
    if outcome.error is not None:
        data["error"] = wire.encode_exception(outcome.error)
    if outcome.partial is not None:
        data["partial"] = wire.encode_value(outcome.partial, strict=False)
    return data


def decode_job_result(data: Dict[str, Any]) -> JobResult:
    """Rebuild a :class:`~repro.service.engine.JobResult` from the wire."""
    error = data.get("error")
    partial = data.get("partial")
    return JobResult(
        job_id=data.get("job_id", ""),
        status=data.get("status", FAILED),
        value=wire.decode_value(data["value"]) if "value" in data else None,
        error=wire.decode_exception(error) if error is not None else None,
        partial=wire.decode_value(partial) if partial is not None else None,
        cache_hit=bool(data.get("cache_hit")),
    )


class ShardServer:
    """One shard: a frame-protocol server over a :class:`SimulationService`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        unix_path: Optional[str] = None,
        max_workers: int = 2,
        executor: str = "thread",
        quotas: Optional[Dict[str, TenantQuota]] = None,
        faults: Optional[faults_mod.FaultPlan] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.unix_path = unix_path
        self.max_workers = int(max_workers)
        self.executor = executor
        self.quotas = quotas
        self._faults = faults
        self._service: Optional[SimulationService] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_at = 0.0
        self.inflight = 0
        self.served = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "ShardServer":
        if self._server is not None:
            return self
        if self._faults is None:
            self._faults = faults_mod.active()
        self._service = SimulationService(
            max_workers=self.max_workers,
            executor=self.executor,
            quotas=self.quotas,
        )
        await self._service.start()
        if self.unix_path is not None:
            # A stale socket file from a SIGKILLed predecessor must not
            # block the bind; connect attempts to it would fail anyway.
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        return self

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        service, self._service = self._service, None
        if service is not None:
            await service.stop()
        if self.unix_path is not None:
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass

    async def __aenter__(self) -> "ShardServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.stop()
        return False

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("shard not started")
        await self._server.serve_forever()

    @property
    def address(self) -> str:
        if self.unix_path is not None:
            return f"unix://{self.unix_path}"
        return f"tcp://{self.host}:{self.port}"

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The heartbeat payload: load, cache stats, identity."""
        cache_stats: Optional[Dict[str, int]] = None
        cache_enabled = service_cache.env_enabled()
        if cache_enabled:
            cache_stats = service_cache.default_cache().stats()
        return {
            "pid": os.getpid(),
            "address": self.address,
            "inflight": self.inflight,
            "served": self.served,
            "queue_depth": (
                self._service.queue_depth() if self._service else 0
            ),
            "max_workers": self.max_workers,
            "executor": self.executor,
            "cache_enabled": cache_enabled,
            "cache": cache_stats,
            "uptime_s": (
                time.monotonic() - self._started_at
                if self._started_at
                else 0.0
            ),
        }

    # -- protocol ------------------------------------------------------------

    async def _handle_connection(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                try:
                    frame = await wire.read_frame(reader)
                except wire.WireError:
                    # An unparseable inbound frame desynchronizes the
                    # stream; the only safe recovery is to drop the
                    # connection (the client treats it as transport
                    # failure and retries).
                    break
                if frame is None:
                    break
                self._faults.note_request()
                task = asyncio.create_task(
                    self._serve_frame(frame, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            # The peer is gone: stop its jobs (cooperatively) rather
            # than letting abandoned work hold worker slots.
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(
        self,
        writer: "asyncio.StreamWriter",
        lock: "asyncio.Lock",
        frame: Dict[str, Any],
    ) -> None:
        async with lock:
            await wire.write_frame(writer, frame, faults=self._faults)

    async def _serve_frame(
        self,
        frame: Dict[str, Any],
        writer: "asyncio.StreamWriter",
        lock: "asyncio.Lock",
    ) -> None:
        frame_id = frame.get("id")
        try:
            if frame.get("kind") != wire.REQUEST:
                raise wire.ProtocolError(
                    f"shard expects request frames, got {frame.get('kind')!r}"
                )
            op = frame.get("op")
            if op == "ping":
                await self._send(
                    writer,
                    lock,
                    wire.make_frame(
                        wire.HEARTBEAT, id=frame_id, shard=self.snapshot()
                    ),
                )
                return
            if op == "submit":
                await self._serve_submit(frame, writer, lock)
                return
            if op == "shutdown":
                await self._send(
                    writer,
                    lock,
                    wire.make_frame(wire.RESPONSE, id=frame_id, ok=True),
                )
                asyncio.get_event_loop().call_soon(
                    lambda: asyncio.ensure_future(self.stop())
                )
                return
            raise wire.ProtocolError(f"unknown request op {op!r}")
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            try:
                await self._send(
                    writer,
                    lock,
                    wire.make_frame(
                        wire.RESPONSE,
                        id=frame_id,
                        ok=False,
                        error=wire.encode_exception(exc),
                    ),
                )
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_submit(
        self,
        frame: Dict[str, Any],
        writer: "asyncio.StreamWriter",
        lock: "asyncio.Lock",
    ) -> None:
        frame_id = frame.get("id")
        job = JobSpec.from_dict(frame["job"])
        stream = bool(frame.get("stream"))
        handle = await self._service.submit(job=job)
        self.inflight += 1
        obs_metrics.gauge_max(obs_metrics.SHARD_INFLIGHT, self.inflight)
        forwarder: Optional[asyncio.Task] = None
        if stream and not handle.future.done():
            forwarder = asyncio.create_task(
                self._forward_events(handle, frame_id, writer, lock)
            )
        try:
            outcome = await self._service.result(handle)
        except asyncio.CancelledError:
            # Connection teardown: withdraw/cancel the job cooperatively.
            await self._service.cancel(handle)
            raise
        finally:
            self.inflight -= 1
            self.served += 1
            if forwarder is not None:
                await asyncio.wait({forwarder})
        await self._send(
            writer,
            lock,
            wire.make_frame(
                wire.RESPONSE,
                id=frame_id,
                ok=True,
                result=encode_job_result(outcome),
            ),
        )

    async def _forward_events(
        self,
        handle: Any,
        frame_id: Any,
        writer: "asyncio.StreamWriter",
        lock: "asyncio.Lock",
    ) -> None:
        forwarded = 0
        try:
            async for event in self._service.events(handle):
                forwarded += 1
                await self._send(
                    writer,
                    lock,
                    wire.make_frame(
                        wire.EVENT,
                        id=frame_id,
                        event={
                            "kind": event.kind,
                            "done": event.done,
                            "total": event.total,
                        },
                    ),
                )
            # A fast job can finish before this subscription attaches;
            # a streamed submit still gets its terminal progress event.
            if forwarded == 0 and handle.last_event is not None:
                event = handle.last_event
                await self._send(
                    writer,
                    lock,
                    wire.make_frame(
                        wire.EVENT,
                        id=frame_id,
                        event={
                            "kind": event.kind,
                            "done": event.done,
                            "total": event.total,
                        },
                    ),
                )
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def _run_shard(args: argparse.Namespace) -> None:
    server = ShardServer(
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        max_workers=args.workers,
        executor=args.executor,
    )
    await server.start()
    print(f"READY {server.address}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(
        description="Run one repro simulation shard."
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = OS-assigned)"
    )
    parser.add_argument(
        "--unix", default=None, help="serve on this Unix socket path instead"
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--executor", default="thread", choices=("thread", "process")
    )
    args = parser.parse_args(argv)
    try:
        asyncio.run(_run_shard(args))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()


__all__ = [
    "ShardServer",
    "decode_job_result",
    "encode_job_result",
    "main",
]
