"""Versioned length-prefixed JSON frame protocol for shard RPC.

The wire format the distributed serving tier speaks, deliberately dumb:
every frame is an 8-byte header — big-endian payload length plus a
CRC-32 of the payload — followed by a UTF-8 JSON object.  Length
prefixing gives unambiguous frame boundaries over any byte stream (TCP
or Unix socket); the checksum turns a corrupted payload into a
*detected* :class:`CorruptFrame` instead of silently wrong physics; and
JSON keeps the payload debuggable with ``tcpdump`` and composable with
the durable job form — a submit frame carries exactly
:meth:`repro.service.jobs.JobSpec.to_dict`, so "what the shard executes"
and "what travels on the wire" are one definition.

Frames are format-versioned like :class:`~repro.service.jobs.JobSpec`
(``v`` in every frame; a mismatch raises :class:`ProtocolError` on the
receiving side), and come in four kinds:

- ``request`` — client-to-shard, with an ``op`` (``submit``/``ping``/
  ``shutdown``) and an ``id`` the shard echoes in everything it sends
  back, so one connection can multiplex requests;
- ``response`` — terminal answer to a request (``ok`` plus either a
  ``result`` or an ``error``);
- ``event`` — a streamed :class:`~repro.obs.progress.ProgressEvent`
  emitted while a ``submit`` with ``stream=true`` executes;
- ``heartbeat`` — the answer to ``ping``: per-shard load (inflight,
  queue depth), cache stats, pid, and uptime, the feed of the cluster
  scheduler's health checks and cache-affinity diagnostics.

Result payloads cross the wire through a tagged JSON value codec
(:func:`encode_value`/:func:`decode_value`) that round-trips every type
a facade can return **exactly**: complex scalars, numpy scalars, and
complex ndarrays travel as separate real/imaginary parts whose floats
serialize via ``repr`` (bit-exact for every finite double), tuples and
non-string-keyed dicts are tagged so they come back type-for-type, and
exceptions carry their class, module, and the structured
:class:`~repro.resources.ResourceExhausted` context.  A deserialized
:class:`~repro.core.backend.SimulationResult` is therefore bitwise
identical to the one the shard produced — the property the cluster's
"remote == local" acceptance test pins.
"""

from __future__ import annotations

import asyncio
import importlib
import json
import struct
import zlib
from typing import Any, Dict, Optional

import numpy as np

WIRE_FORMAT_VERSION = 1
"""Bumped whenever the frame layout or value codec changes."""

MAX_FRAME_BYTES = 1 << 30
"""Upper bound on one frame's payload (sanity check on the length prefix).

A peer speaking a different protocol (or a corrupted length field) would
otherwise make the reader allocate an absurd buffer; anything larger
than 1 GiB is treated as a framing error.
"""

_HEADER = struct.Struct(">II")

REQUEST = "request"
RESPONSE = "response"
EVENT = "event"
HEARTBEAT = "heartbeat"
KINDS = (REQUEST, RESPONSE, EVENT, HEARTBEAT)


class WireError(RuntimeError):
    """Base class for transport-layer failures (retryable by the client)."""


class CorruptFrame(WireError):
    """A frame failed its checksum or could not be parsed."""


class ProtocolError(WireError):
    """A structurally valid frame that this build cannot speak."""


class RemoteExecutionError(RuntimeError):
    """A shard-side exception whose type could not be rebuilt locally."""

    def __init__(self, message: str, *, remote_type: str = "") -> None:
        super().__init__(message)
        self.remote_type = remote_type


# -- frame encoding ----------------------------------------------------------


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Serialize one frame dict to its on-wire bytes (header + JSON)."""
    body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


def decode_body(body: bytes, crc: int) -> Dict[str, Any]:
    """Checksum-verify and parse one frame payload."""
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise CorruptFrame("frame payload failed its CRC-32 check")
    try:
        frame = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptFrame(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise CorruptFrame("frame payload is not a JSON object")
    version = frame.get("v")
    if version != WIRE_FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported wire format version {version!r} "
            f"(this build speaks {WIRE_FORMAT_VERSION})"
        )
    if frame.get("kind") not in KINDS:
        raise ProtocolError(f"unknown frame kind {frame.get('kind')!r}")
    return frame


def decode_frame(data: bytes) -> Dict[str, Any]:
    """Parse one complete on-wire frame (header + payload) from bytes."""
    if len(data) < _HEADER.size:
        raise CorruptFrame("frame shorter than its header")
    length, crc = _HEADER.unpack_from(data)
    body = data[_HEADER.size:]
    if length != len(body):
        raise CorruptFrame(
            f"frame length field says {length}, payload has {len(body)}"
        )
    return decode_body(body, crc)


async def read_frame(
    reader: "asyncio.StreamReader",
) -> Optional[Dict[str, Any]]:
    """Read one frame from a stream; ``None`` on clean EOF at a boundary.

    EOF *inside* a frame (header or payload truncated — the peer died
    mid-write) raises :class:`CorruptFrame`: a partial write must look
    like a failure, not like a clean shutdown.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise CorruptFrame("connection closed inside a frame header") from exc
    length, crc = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise CorruptFrame(f"frame length {length} exceeds MAX_FRAME_BYTES")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise CorruptFrame(
            "connection closed inside a frame payload (partial write)"
        ) from exc
    return decode_body(body, crc)


async def write_frame(
    writer: "asyncio.StreamWriter",
    frame: Dict[str, Any],
    faults: Optional[Any] = None,
) -> None:
    """Encode and write one frame, draining the transport.

    ``faults`` is a :class:`~repro.service.remote.faults.FaultPlan` (or
    ``None``); when present, the fully encoded bytes pass through its
    outgoing-transform hook, which may delay, corrupt, or drop them —
    the shard-side seam the fault-injection test suite drives.
    """
    data = encode_frame(frame)
    if faults is not None:
        data = await faults.transform_outgoing(data)
        if data is None:
            return
    writer.write(data)
    await writer.drain()


def make_frame(kind: str, **payload: Any) -> Dict[str, Any]:
    frame = {"v": WIRE_FORMAT_VERSION, "kind": kind}
    frame.update(payload)
    return frame


# -- exact tagged value codec ------------------------------------------------

_TAG = "__wire__"


def encode_value(value: Any, strict: bool = True) -> Any:
    """JSON-able form of any facade result, tagged for exact decoding.

    ``strict=False`` (used for metadata, which backends extend freely)
    replaces an unencodable leaf with its ``repr`` under an ``opaque``
    tag instead of raising — a lossy label beats failing a whole job for
    one diagnostic field.  Result *values* always encode strictly.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        # json emits Infinity/NaN literals (allow_nan default), which
        # json.loads parses back; finite floats round-trip via repr.
        return value
    if isinstance(value, complex):
        return {_TAG: "c", "re": value.real, "im": value.imag}
    if isinstance(value, np.ndarray):
        spec: Dict[str, Any] = {
            _TAG: "nd",
            "dtype": value.dtype.str,
            "shape": list(value.shape),
        }
        flat = np.ravel(value, order="C")
        if np.issubdtype(value.dtype, np.complexfloating):
            spec["re"] = flat.real.tolist()
            spec["im"] = flat.imag.tolist()
        else:
            spec["data"] = flat.tolist()
        return spec
    if isinstance(value, np.generic):
        if isinstance(value, np.complexfloating):
            item: Any = {"re": float(value.real), "im": float(value.imag)}
        else:
            item = value.item()
        return {_TAG: "np", "dtype": value.dtype.str, "v": item}
    if isinstance(value, tuple):
        return {
            _TAG: "t",
            "items": [encode_value(item, strict) for item in value],
        }
    if isinstance(value, list):
        return [encode_value(item, strict) for item in value]
    if isinstance(value, (set, frozenset)):
        tag = "fs" if isinstance(value, frozenset) else "s"
        return {
            _TAG: tag,
            "items": [encode_value(item, strict) for item in value],
        }
    if isinstance(value, bytes):
        return {_TAG: "b", "hex": value.hex()}
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and _TAG not in value:
            return {k: encode_value(v, strict) for k, v in value.items()}
        return {
            _TAG: "d",
            "items": [
                [encode_value(k, strict), encode_value(v, strict)]
                for k, v in value.items()
            ],
        }
    if isinstance(value, BaseException):
        return encode_exception(value)
    from ...core.backend import SimulationResult

    if isinstance(value, SimulationResult):
        return {
            _TAG: "simresult",
            "backend": value.backend,
            "state": encode_value(value.state, strict=True),
            "metadata": encode_value(value.metadata, strict=False),
        }
    if not strict:
        return {_TAG: "opaque", "repr": repr(value)}
    raise WireError(
        f"cannot encode a {type(value).__name__} for the wire"
    )


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value` (exact for every strict encoding)."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if not isinstance(value, dict):
        return value
    tag = value.get(_TAG)
    if tag is None:
        return {k: decode_value(v) for k, v in value.items()}
    if tag == "c":
        return complex(value["re"], value["im"])
    if tag == "nd":
        dtype = np.dtype(value["dtype"])
        shape = tuple(value["shape"])
        if np.issubdtype(dtype, np.complexfloating):
            array = np.asarray(value["re"], dtype=np.float64) + 1j * (
                np.asarray(value["im"], dtype=np.float64)
            )
            array = array.astype(dtype, copy=False)
        else:
            array = np.asarray(value["data"], dtype=dtype)
        return array.reshape(shape)
    if tag == "np":
        dtype = np.dtype(value["dtype"])
        item = value["v"]
        if isinstance(item, dict):
            return dtype.type(complex(item["re"], item["im"]))
        return dtype.type(item)
    if tag == "t":
        return tuple(decode_value(item) for item in value["items"])
    if tag == "s":
        return set(decode_value(item) for item in value["items"])
    if tag == "fs":
        return frozenset(decode_value(item) for item in value["items"])
    if tag == "b":
        return bytes.fromhex(value["hex"])
    if tag == "d":
        return {
            decode_value(k): decode_value(v) for k, v in value["items"]
        }
    if tag == "exc":
        return decode_exception(value)
    if tag == "simresult":
        from ...core.backend import SimulationResult

        return SimulationResult(
            value["backend"],
            decode_value(value["state"]),
            decode_value(value["metadata"]),
        )
    if tag == "opaque":
        return value["repr"]
    raise ProtocolError(f"unknown value tag {tag!r}")


def encode_exception(exc: BaseException) -> Dict[str, Any]:
    """Wire form of a shard-side exception: class identity + context."""
    data: Dict[str, Any] = {
        _TAG: "exc",
        "type": type(exc).__name__,
        "module": type(exc).__module__,
        "message": str(exc),
    }
    # ResourceExhausted subtypes carry structured audit context.
    for field in ("backend", "limit", "observed"):
        if hasattr(exc, field):
            attr = getattr(exc, field)
            if attr is None or isinstance(attr, (str, int, float)):
                data[field] = attr
    return data


def decode_exception(data: Dict[str, Any]) -> BaseException:
    """Rebuild a shard-side exception, best effort.

    Exceptions from :mod:`repro` modules (and builtins) are rebuilt as
    their real type so ``except MemoryBudgetExceeded:`` works across the
    wire; anything unimportable degrades to
    :class:`RemoteExecutionError` with the original type in
    ``remote_type``.
    """
    name = data.get("type", "Exception")
    module = data.get("module", "builtins")
    message = data.get("message", "")
    try:
        cls = getattr(importlib.import_module(module), name)
        if not (isinstance(cls, type) and issubclass(cls, BaseException)):
            raise TypeError(name)
        kwargs = {}
        if "backend" in data or "limit" in data or "observed" in data:
            from ...resources import ResourceExhausted

            if issubclass(cls, ResourceExhausted):
                kwargs = {
                    "backend": data.get("backend") or "",
                    "limit": data.get("limit"),
                    "observed": data.get("observed"),
                }
        return cls(message, **kwargs)
    except Exception:
        return RemoteExecutionError(
            f"{module}.{name}: {message}", remote_type=f"{module}.{name}"
        )


__all__ = [
    "EVENT",
    "HEARTBEAT",
    "KINDS",
    "MAX_FRAME_BYTES",
    "REQUEST",
    "RESPONSE",
    "WIRE_FORMAT_VERSION",
    "CorruptFrame",
    "ProtocolError",
    "RemoteExecutionError",
    "WireError",
    "decode_body",
    "decode_exception",
    "decode_frame",
    "decode_value",
    "encode_exception",
    "encode_frame",
    "encode_value",
    "make_frame",
    "read_frame",
    "write_frame",
]
