"""Durable, shardable job format: JSON round-trip of circuits + options.

The serving tier needs jobs that outlive a process — queued to disk,
shipped to another shard, replayed for audit — so this module defines a
canonical dict/JSON form for everything a simulation request contains:
the circuit (gates, targets, controls, classical bits, feed-forward
conditions — raw-matrix gates such as fusion products serialize their
unitary exactly), the result-relevant :class:`~repro.core.options.SimOptions`
(via :meth:`~repro.core.options.SimOptions.canonical_dict`), the task
kind, task arguments (shots / Pauli string / basis index), and the
tenant + priority scheduling envelope.  The same canonical circuit dict
is the circuit half of the result cache's content-addressed key
(:mod:`repro.service.cache`), so "same job" and "same cache entry" are
one definition.

Exactness: floats serialize through ``repr`` (Python's ``json`` does
this by default), which round-trips every finite double bit-for-bit, so
a deserialized job simulates bitwise identically to the original —
including raw complex matrices, stored as separate real/imaginary
nested lists.
"""

from __future__ import annotations

import json
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from ..circuits.circuit import Operation, QuantumCircuit
from ..circuits.gates import (
    FIXED_GATES,
    PARAMETRIC_GATES,
    Gate,
    make_gate,
)
from ..core.options import SimOptions

JOB_FORMAT_VERSION = 1
"""Bumped whenever the canonical dict layout changes (invalidates keys)."""

TASKS = ("simulate", "sample", "expectation", "single_amplitude")
"""Service task kinds, one per :mod:`repro.core` facade."""

_PSEUDO_GATES = ("measure", "barrier")


# -- gates -------------------------------------------------------------------


def gate_to_dict(gate: Gate) -> Dict[str, Any]:
    """Canonical dict for one gate.

    Registry gates (fixed or parametric) serialize by name + params and
    rebuild through :func:`~repro.circuits.gates.make_gate`.  Anything
    else — fusion products, ``_dg`` adjoints of raw matrices — carries
    its full unitary as ``{"re": [[...]], "im": [[...]]}`` nested lists.
    """
    name = gate.name
    if name in _PSEUDO_GATES:
        return {"name": name}
    if name in FIXED_GATES and not gate.params:
        return {"name": name}
    if name in PARAMETRIC_GATES:
        return {"name": name, "params": list(gate.params)}
    matrix = gate.matrix
    data: Dict[str, Any] = {
        "name": name,
        "num_qubits": gate.num_qubits,
        "matrix": {
            "re": matrix.real.tolist(),
            "im": matrix.imag.tolist(),
        },
    }
    if gate.params:
        data["params"] = list(gate.params)
    return data


def gate_from_dict(data: Dict[str, Any]) -> Gate:
    """Rebuild a gate from :func:`gate_to_dict` output."""
    name = data["name"]
    if "matrix" in data:
        matrix = np.asarray(data["matrix"]["re"], dtype=np.float64) + 1j * (
            np.asarray(data["matrix"]["im"], dtype=np.float64)
        )
        return Gate(
            name, int(data["num_qubits"]), matrix, data.get("params", ())
        )
    if name in _PSEUDO_GATES:
        from ..circuits import gates as g

        return g.MEASURE if name == "measure" else g.BARRIER
    return make_gate(name, data.get("params", ()))


# -- operations and circuits -------------------------------------------------


def operation_to_dict(op: Operation) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        "gate": gate_to_dict(op.gate),
        "targets": list(op.targets),
    }
    if op.controls:
        # Controls are an unordered set semantically (Operation.__eq__
        # compares them as one); sort so equal operations share a dict.
        data["controls"] = sorted(op.controls)
    if op.clbits:
        data["clbits"] = list(op.clbits)
    if op.condition is not None:
        data["condition"] = list(op.condition)
    return data


def operation_from_dict(data: Dict[str, Any]) -> Operation:
    condition = data.get("condition")
    return Operation(
        gate_from_dict(data["gate"]),
        data["targets"],
        data.get("controls", ()),
        data.get("clbits", ()),
        condition=tuple(condition) if condition is not None else None,
    )


def circuit_to_dict(
    circuit: QuantumCircuit, include_name: bool = True
) -> Dict[str, Any]:
    """Canonical dict for a circuit.

    ``include_name=False`` drops the display name — the form the result
    cache fingerprints, so renaming a circuit never misses the cache.
    """
    data: Dict[str, Any] = {
        "num_qubits": circuit.num_qubits,
        "num_clbits": circuit.num_clbits,
        "operations": [operation_to_dict(op) for op in circuit.operations],
    }
    if include_name:
        data["name"] = circuit.name
    return data


def circuit_from_dict(data: Dict[str, Any]) -> QuantumCircuit:
    circuit = QuantumCircuit(
        int(data["num_qubits"]), name=data.get("name", "circuit")
    )
    for op_data in data["operations"]:
        circuit.append(operation_from_dict(op_data))
    circuit.num_clbits = max(
        circuit.num_clbits, int(data.get("num_clbits", 0))
    )
    return circuit


def canonical_json(data: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, exact floats."""
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


# -- job specs ---------------------------------------------------------------


@dataclass
class JobSpec:
    """One durable simulation request.

    Attributes:
        circuit: The circuit to run.
        task: One of :data:`TASKS`.
        backend: Registry backend name or ``"auto"``.
        options: Validated simulation options.  Only the result-relevant
            fields survive serialization (scheduling knobs are the
            engine's business, not the job's).
        task_args: Task-specific arguments: ``{"shots": n}`` for
            ``sample``, ``{"pauli": "XZ.."}`` for ``expectation``,
            ``{"basis_index": i}`` for ``single_amplitude``.
        tenant: Quota bucket this job bills against (``""`` = default).
        priority: Smaller runs earlier; ties run in submission order.
        job_id: Stable identity for resubmission/audit (UUID by default).
    """

    circuit: QuantumCircuit
    task: str = "simulate"
    backend: str = "auto"
    options: SimOptions = field(default_factory=SimOptions)
    task_args: Dict[str, Any] = field(default_factory=dict)
    tenant: str = ""
    priority: int = 0
    job_id: str = field(default_factory=lambda: uuid.uuid4().hex)

    def __post_init__(self) -> None:
        if self.task not in TASKS:
            raise ValueError(
                f"unknown task {self.task!r}; choose from {TASKS}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": JOB_FORMAT_VERSION,
            "job_id": self.job_id,
            "task": self.task,
            "backend": self.backend,
            "circuit": circuit_to_dict(self.circuit),
            "options": self.options.canonical_dict(),
            "task_args": dict(self.task_args),
            "tenant": self.tenant,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        version = data.get("version", JOB_FORMAT_VERSION)
        if version != JOB_FORMAT_VERSION:
            raise ValueError(
                f"unsupported job format version {version!r} "
                f"(this build speaks {JOB_FORMAT_VERSION})"
            )
        return cls(
            circuit=circuit_from_dict(data["circuit"]),
            task=data.get("task", "simulate"),
            backend=data.get("backend", "auto"),
            options=SimOptions.from_canonical(data.get("options", {})),
            task_args=dict(data.get("task_args", {})),
            tenant=data.get("tenant", ""),
            priority=int(data.get("priority", 0)),
            job_id=data.get("job_id") or uuid.uuid4().hex,
        )

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        return cls.from_dict(json.loads(text))


@dataclass
class JobBatch:
    """A shardable set of jobs (the qobj-style submission envelope)."""

    jobs: List[JobSpec] = field(default_factory=list)
    batch_id: str = field(default_factory=lambda: uuid.uuid4().hex)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": JOB_FORMAT_VERSION,
            "batch_id": self.batch_id,
            "jobs": [job.to_dict() for job in self.jobs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobBatch":
        return cls(
            jobs=[JobSpec.from_dict(item) for item in data.get("jobs", [])],
            batch_id=data.get("batch_id") or uuid.uuid4().hex,
        )

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "JobBatch":
        return cls.from_dict(json.loads(text))

    def shard(self, num_shards: int) -> List["JobBatch"]:
        """Split into ``num_shards`` round-robin sub-batches (fan-out)."""
        num_shards = max(1, int(num_shards))
        shards: List[List[JobSpec]] = [[] for _ in range(num_shards)]
        for index, job in enumerate(self.jobs):
            shards[index % num_shards].append(job)
        return [
            JobBatch(jobs=jobs, batch_id=f"{self.batch_id}/{i}")
            for i, jobs in enumerate(shards)
            if jobs
        ]


def validate_task_args(task: str, task_args: Dict[str, Any]) -> None:
    """Reject a job whose task arguments cannot drive its facade."""
    if task == "sample" and "shots" not in task_args:
        raise ValueError("sample jobs need task_args['shots']")
    if task == "expectation" and "pauli" not in task_args:
        raise ValueError("expectation jobs need task_args['pauli']")
    if task == "single_amplitude" and "basis_index" not in task_args:
        raise ValueError(
            "single_amplitude jobs need task_args['basis_index']"
        )


__all__ = [
    "JOB_FORMAT_VERSION",
    "TASKS",
    "JobBatch",
    "JobSpec",
    "canonical_json",
    "circuit_from_dict",
    "circuit_to_dict",
    "gate_from_dict",
    "gate_to_dict",
    "operation_from_dict",
    "operation_to_dict",
    "validate_task_args",
]
