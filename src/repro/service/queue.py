"""Priority job queue with per-tenant admission and concurrency quotas.

Fair scheduling under load is the queue's whole job: jobs are ordered by
``(priority, submission sequence)`` — smaller priority first, FIFO
within a priority — and a :class:`TenantQuota` bounds what any one
tenant can do to everyone else: how many jobs it may have waiting
(``max_pending``, enforced at admission), how many it may run at once
(``max_concurrent``, enforced at dispatch — an over-limit tenant's jobs
are *skipped*, not dropped, so other tenants' work flows past), and the
:class:`~repro.resources.ResourceBudget` ceiling its jobs execute under
(intersected with each job's own requested budget, so a job can only
tighten its tenant's caps, never escape them).

The queue is plain thread-safe state — the asyncio engine
(:mod:`repro.service.engine`) owns all waiting/wakeup concerns.

Cache-aware batch scheduling lives at this layer too:
:func:`split_warm` partitions a batch by probing the result cache, so
the engine serves every warm hit *immediately* — before any miss is
admitted to the queue — and a hit-heavy batch never occupies a worker
slot that a cold job could be using.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import metrics as obs_metrics
from ..resources import ResourceBudget


class QuotaExceeded(RuntimeError):
    """A tenant's admission quota rejected a submission."""

    def __init__(self, message: str, *, tenant: str = "") -> None:
        super().__init__(message)
        self.tenant = tenant


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits; ``None`` means the dimension is unlimited.

    Attributes:
        max_pending: Jobs the tenant may have queued (admission control:
            a submission past the bound raises :class:`QuotaExceeded`).
        max_concurrent: Jobs the tenant may have running at once
            (dispatch control: excess jobs wait their turn).
        budget: Resource ceiling for every job the tenant runs,
            intersected with the job's own budget via
            :meth:`~repro.resources.ResourceBudget.intersect`.
    """

    max_pending: Optional[int] = None
    max_concurrent: Optional[int] = None
    budget: Optional[ResourceBudget] = None

    def effective_budget(
        self, requested: Optional[ResourceBudget]
    ) -> Optional[ResourceBudget]:
        """The tighter of the tenant ceiling and the job's own budget."""
        if self.budget is None:
            return requested
        return self.budget.intersect(requested)


@dataclass
class _TenantState:
    pending: int = 0
    running: int = 0
    quota: TenantQuota = field(default_factory=TenantQuota)


class PriorityJobQueue:
    """Thread-safe ``(priority, seq)`` heap with tenant accounting."""

    def __init__(
        self, quotas: Optional[Dict[str, TenantQuota]] = None
    ) -> None:
        self._lock = threading.Lock()
        self._heap: List[Tuple[int, int, Any]] = []
        self._seq = itertools.count()
        self._removed: set = set()
        self._tenants: Dict[str, _TenantState] = {}
        for tenant, quota in (quotas or {}).items():
            self._tenants[tenant] = _TenantState(quota=quota)

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState()
        return state

    def quota_for(self, tenant: str) -> TenantQuota:
        with self._lock:
            return self._state(tenant).quota

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        with self._lock:
            self._state(tenant).quota = quota

    # -- queue operations ----------------------------------------------------

    def push(self, item: Any, priority: int, tenant: str = "") -> None:
        """Admit one job, enforcing the tenant's ``max_pending`` quota."""
        with self._lock:
            state = self._state(tenant)
            limit = state.quota.max_pending
            if limit is not None and state.pending >= limit:
                raise QuotaExceeded(
                    f"tenant {tenant!r} already has {state.pending} "
                    f"pending job(s) (max_pending={limit})",
                    tenant=tenant,
                )
            state.pending += 1
            heapq.heappush(
                self._heap, (int(priority), next(self._seq), item)
            )
            depth = len(self._heap) - len(self._removed)
        obs_metrics.gauge_max(obs_metrics.SERVICE_QUEUE_DEPTH, depth)

    def pop_eligible(
        self, is_eligible: Callable[[Any], bool] = lambda item: True
    ) -> Optional[Any]:
        """Best-priority job whose tenant has a free concurrency slot.

        Jobs of saturated tenants (``running >= max_concurrent``) are
        skipped in place — they keep their heap position and become
        eligible again when the tenant's running count drops.  Returns
        ``None`` when nothing is currently dispatchable.  The popped
        job's tenant is accounted as running; pair every successful pop
        with :meth:`job_finished`.
        """
        with self._lock:
            skipped: List[Tuple[int, int, Any]] = []
            found = None
            while self._heap:
                entry = heapq.heappop(self._heap)
                item = entry[2]
                if id(item) in self._removed:
                    self._removed.discard(id(item))
                    continue
                tenant = getattr(item, "tenant", "")
                state = self._state(tenant)
                limit = state.quota.max_concurrent
                saturated = limit is not None and state.running >= limit
                if saturated or not is_eligible(item):
                    skipped.append(entry)
                    continue
                state.pending -= 1
                state.running += 1
                found = item
                break
            for entry in skipped:
                heapq.heappush(self._heap, entry)
            return found

    def remove(self, item: Any) -> bool:
        """Withdraw a queued job (cancellation before dispatch)."""
        with self._lock:
            for entry in self._heap:
                if entry[2] is item and id(item) not in self._removed:
                    self._removed.add(id(item))
                    self._state(getattr(item, "tenant", "")).pending -= 1
                    return True
            return False

    def job_finished(self, tenant: str = "") -> None:
        """Release the concurrency slot a popped job was holding."""
        with self._lock:
            state = self._state(tenant)
            state.running = max(0, state.running - 1)

    def depth(self) -> int:
        with self._lock:
            return len(self._heap) - len(self._removed)

    def tenant_counts(self, tenant: str = "") -> Tuple[int, int]:
        """``(pending, running)`` for one tenant."""
        with self._lock:
            state = self._state(tenant)
            return state.pending, state.running


def split_warm(
    jobs: Sequence[Any], probe: Callable[[Any], Optional[Any]]
) -> List[Tuple[Any, Optional[Any]]]:
    """Probe each job's cache entry, pairing it with its warm hit (or ``None``).

    The scheduling policy behind batch submission ("serve hits before
    dispatching misses"): the engine resolves every ``(job, hit)`` pair
    with a non-``None`` hit on the spot — no queue admission, no worker
    slot, no quota charge — and only the misses proceed to
    :meth:`PriorityJobQueue.push`.  Probing is read-only and
    order-preserving, so a batch's cold jobs still queue in submission
    order.
    """
    return [(job, probe(job)) for job in jobs]


__all__ = [
    "PriorityJobQueue",
    "QuotaExceeded",
    "TenantQuota",
    "split_warm",
]
