"""Content-addressed persistent result cache for simulation requests.

The "millions of users" observation behind the serving tier: repeated
submissions of the same circuit under the same result-relevant options
are the common case (parameter sweeps resubmitted, CI reruns, fan-out
shards racing on shared work), and the library's bitwise-determinism
guarantee makes their results *interchangeable* — so the dispatcher can
answer from a cache instead of re-executing a backend.

Keys are SHA-256 over a canonical JSON payload: the format version, the
task kind, the requested backend name (``"auto"`` included — the auto
router is a pure function of the circuit, so "auto picked X" is itself
reproducible), the measurement-stripped circuit
(:func:`repro.service.jobs.circuit_to_dict` without the display name —
execution strips measurements/feed-forward too, so circuits differing
only there correctly share an entry), the canonicalized options
(:meth:`repro.core.options.SimOptions.canonical_dict` — ``seed``
included, the result-invariant scheduling knobs excluded), and the
task-specific arguments (shots / Pauli string / basis index).

Requests that cannot be keyed soundly return no key and are never
cached: an explicit contraction ``plan`` (no canonical form, changes
summation order) and ``method="auto"`` (resolves against mutable
autotuner state, so the same key could map to different kernels).

Entries pickle the full ``(value, metadata, backend_name)`` triple —
pickle, not JSON, because exactness is the contract: ndarray states,
tuple-valued metadata, and numpy scalars must come back bit-for-bit and
type-for-type.  Every ``get`` decodes a fresh copy, so callers mutating
a returned result never corrupt the cache.

Two tiers: a small in-memory LRU of encoded entries (process-local fast
path) over a directory of one-file-per-key entries with atomic
tmp-then-``os.replace`` writes (crash-safe, safe under concurrent
writers — both sides serialize the same request, so a lost race writes
identical bytes).  Disk usage is LRU-bounded by mtime, refreshed on hit.

Policy: ``REPRO_CACHE`` turns the cache on process-wide (``SimOptions``
``cache=True/False`` overrides per call), ``REPRO_CACHE_DIR`` relocates
it, ``REPRO_CACHE_MAX_BYTES`` bounds it.  Counters flow into
:mod:`repro.obs.metrics` when tracing is active and are always mirrored
on the instance (``stats()``), so hit rates are observable without a
trace session.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import uuid
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..circuits.circuit import QuantumCircuit
from ..core.options import SimOptions
from ..obs import metrics as obs_metrics
from .jobs import JOB_FORMAT_VERSION, canonical_json, circuit_to_dict

CACHE_ENV_VAR = "REPRO_CACHE"
"""Set truthy (``1``/``true``/``on``) to enable the result cache."""

CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"
"""Cache directory override (default ``~/.cache/repro/results``)."""

CACHE_MAX_BYTES_ENV_VAR = "REPRO_CACHE_MAX_BYTES"
"""Disk budget for cached entries (default 256 MiB)."""

DEFAULT_MAX_BYTES = 256 * 1024 * 1024
DEFAULT_MEMORY_ENTRIES = 64
_ENTRY_SUFFIX = ".res"

PROCESS_TOKEN = f"{os.getpid()}.{uuid.uuid4().hex[:12]}"
"""Identity of this process as a cache writer.

Stamped into every entry this process stores (``writer`` in the pickled
envelope, alongside the pid) so readers can tell coherence traffic
apart: a disk-tier hit whose writer token differs was produced by
*another* process — a pool worker, a shard, a previous run — and counts
toward ``cache.remote_hit``.  The uuid component guards against pid
recycling across runs sharing one cache directory.
"""


def env_enabled() -> bool:
    """Whether ``REPRO_CACHE`` asks for the cache process-wide."""
    value = os.environ.get(CACHE_ENV_VAR, "").strip().lower()
    return value in ("1", "true", "yes", "on")


def default_cache_dir() -> str:
    configured = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    if configured:
        return configured
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "results"
    )


def _env_max_bytes() -> int:
    spec = os.environ.get(CACHE_MAX_BYTES_ENV_VAR, "").strip()
    if not spec:
        return DEFAULT_MAX_BYTES
    try:
        return max(int(spec), 1)
    except ValueError:
        return DEFAULT_MAX_BYTES


def request_key(
    circuit: QuantumCircuit,
    backend: str,
    task: str,
    options: SimOptions,
    extra: Optional[Dict[str, Any]] = None,
) -> Optional[str]:
    """Content-addressed key for one request, or ``None`` if uncacheable."""
    if options.method == "auto":
        return None
    try:
        options_part = options.canonical_dict()
    except TypeError:  # explicit contraction plan
        return None
    payload = {
        "version": JOB_FORMAT_VERSION,
        "task": task,
        "backend": backend,
        "circuit": circuit_to_dict(
            circuit.without_measurements(), include_name=False
        ),
        "options": options_part,
        "extra": extra or {},
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()


class ResultCache:
    """Two-tier LRU cache of pickled ``(value, metadata, backend)`` triples."""

    def __init__(
        self,
        directory: Optional[str] = None,
        max_bytes: Optional[int] = None,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ) -> None:
        self.directory = directory
        self.max_bytes = (
            _env_max_bytes() if max_bytes is None else max(int(max_bytes), 1)
        )
        self.memory_entries = max(0, int(memory_entries))
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt = 0
        self.stores = 0
        self.remote_hits = 0

    # -- paths ---------------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + _ENTRY_SUFFIX)

    # -- lookups -------------------------------------------------------------

    def get(self, key: str) -> Optional[Tuple[Any, Dict[str, Any], str]]:
        """The cached triple for ``key``, decoded fresh, or ``None``.

        A hit refreshes the entry's LRU position in both tiers; an
        unreadable disk entry is dropped (counted ``corrupt``) and the
        lookup degrades to a miss — corruption can never poison results.
        """
        blob: Optional[bytes] = None
        from_disk = False
        with self._lock:
            blob = self._memory.get(key)
            if blob is not None:
                self._memory.move_to_end(key)
        if blob is None and self.directory is not None:
            from_disk = True
            path = self._path(key)
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
            except OSError:
                blob = None
            if blob is not None:
                try:
                    os.utime(path)
                except OSError:
                    pass
        if blob is None:
            self._record_miss()
            return None
        try:
            entry = pickle.loads(blob)
            value = entry["value"]
            meta = entry["meta"]
            backend = entry["backend"]
        except Exception:
            self._drop_corrupt(key)
            self._record_miss()
            return None
        # Coherence accounting: a disk-tier hit on an entry another
        # process wrote is work this process skipped thanks to a shared
        # directory (pool workers, shards, earlier runs).  Entries
        # predating the writer stamp count as local (unknowable).
        writer = entry.get("writer") if isinstance(entry, dict) else None
        remote = from_disk and writer is not None and writer != PROCESS_TOKEN
        with self._lock:
            self.hits += 1
            if remote:
                self.remote_hits += 1
            if self.memory_entries and key not in self._memory:
                self._memory[key] = blob
                self._trim_memory_locked()
        obs_metrics.counter_add(obs_metrics.SERVICE_CACHE_HITS)
        if remote:
            obs_metrics.counter_add(obs_metrics.SERVICE_CACHE_REMOTE_HITS)
        return value, meta, backend

    def _record_miss(self) -> None:
        with self._lock:
            self.misses += 1
        obs_metrics.counter_add(obs_metrics.SERVICE_CACHE_MISSES)

    def _drop_corrupt(self, key: str) -> None:
        with self._lock:
            self.corrupt += 1
            self._memory.pop(key, None)
        obs_metrics.counter_add(obs_metrics.SERVICE_CACHE_CORRUPT)
        if self.directory is not None:
            try:
                os.remove(self._path(key))
            except OSError:
                pass

    # -- stores --------------------------------------------------------------

    def put(
        self, key: str, value: Any, meta: Dict[str, Any], backend: str
    ) -> None:
        """Store one triple; atomic on disk, LRU-evicting past the bound.

        The entry is pickled *now*, so callers may keep mutating their
        metadata dict (the dispatcher attaches the trace report after
        storing) without the mutation reaching the cache.  Stored
        metadata drops the per-run ``report`` and ``cache`` annotations:
        a future hit describes the run that produced the bits, not the
        observation of this one.
        """
        stored_meta = {
            name: item
            for name, item in meta.items()
            if name not in ("report", "cache")
        }
        blob = pickle.dumps(
            {
                "value": value,
                "meta": stored_meta,
                "backend": backend,
                "writer": PROCESS_TOKEN,
                "writer_pid": os.getpid(),
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        with self._lock:
            self.stores += 1
            if self.memory_entries:
                self._memory[key] = blob
                self._memory.move_to_end(key)
                self._trim_memory_locked()
        if self.directory is None:
            return
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_path, self._path(key))
            except BaseException:
                try:
                    os.remove(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or vanished cache directory degrades the cache
            # to memory-only; it must never fail the simulation.
            return
        self._evict_disk()

    def _trim_memory_locked(self) -> None:
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _evict_disk(self) -> None:
        """Drop least-recently-used entries until under ``max_bytes``."""
        try:
            entries = []
            total = 0
            with os.scandir(self.directory) as it:
                for item in it:
                    if not item.name.endswith(_ENTRY_SUFFIX):
                        continue
                    try:
                        stat = item.stat()
                    except OSError:
                        continue
                    entries.append((stat.st_mtime, item.path, stat.st_size))
                    total += stat.st_size
            if total <= self.max_bytes:
                return
            entries.sort()
            for _, path, size in entries:
                if total <= self.max_bytes:
                    break
                try:
                    os.remove(path)
                except OSError:
                    continue
                total -= size
                with self._lock:
                    self.evictions += 1
                obs_metrics.counter_add(obs_metrics.SERVICE_CACHE_EVICTIONS)
        except OSError:
            return

    # -- management ----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "corrupt": self.corrupt,
                "stores": self.stores,
                "remote_hits": self.remote_hits,
                "memory_entries": len(self._memory),
            }

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
        if self.directory is None:
            return
        try:
            with os.scandir(self.directory) as it:
                names = [
                    item.path
                    for item in it
                    if item.name.endswith(_ENTRY_SUFFIX)
                ]
        except OSError:
            return
        for path in names:
            try:
                os.remove(path)
            except OSError:
                pass


# -- process-wide default instance ------------------------------------------

_default_lock = threading.Lock()
_default_cache: Optional[ResultCache] = None
_default_config: Optional[Tuple[str, int]] = None


def default_cache() -> ResultCache:
    """The process-wide cache, rebuilt when the env configuration moves."""
    global _default_cache, _default_config
    config = (default_cache_dir(), _env_max_bytes())
    with _default_lock:
        if _default_cache is None or _default_config != config:
            _default_cache = ResultCache(
                directory=config[0], max_bytes=config[1]
            )
            _default_config = config
        return _default_cache


def reset_default_cache() -> None:
    """Forget the process-wide instance (tests repoint the directory)."""
    global _default_cache, _default_config
    with _default_lock:
        _default_cache = None
        _default_config = None


def active_cache(options: SimOptions) -> Optional[ResultCache]:
    """The cache this request participates in, or ``None`` when off.

    ``options.cache`` overrides per call; ``None`` defers to
    ``REPRO_CACHE``.
    """
    enabled = options.cache if options.cache is not None else env_enabled()
    if not enabled:
        return None
    return default_cache()


__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CACHE_ENV_VAR",
    "CACHE_MAX_BYTES_ENV_VAR",
    "DEFAULT_MAX_BYTES",
    "PROCESS_TOKEN",
    "ResultCache",
    "active_cache",
    "default_cache",
    "default_cache_dir",
    "env_enabled",
    "request_key",
    "reset_default_cache",
]
