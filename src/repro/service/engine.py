"""Asyncio job engine: submit/await/cancel simulations as a service.

The front door of :mod:`repro.service`::

    async with SimulationService(max_workers=4) as service:
        result = await service.simulate(circuit, backend="auto", seed=7)

        handle = await service.submit(circuit, task="sample",
                                      task_args={"shots": 100})
        async for event in service.events(handle):
            ...                        # live ProgressEvents
        outcome = await service.result(handle)

Everything composes from primitives that already exist: jobs run on the
library's own :class:`~repro.parallel.ThreadPool` /
:class:`~repro.parallel.ProcessPool`; progress streaming and
cancellation reuse the ``progress=`` callback plumbing
(:mod:`repro.obs.progress`) — the engine installs a hook that fans
events out to async subscribers and raises
:class:`~repro.obs.progress.CancelledError` at the next gate-loop
checkpoint once a job is cancelled; per-tenant fairness comes from
:class:`~repro.service.queue.PriorityJobQueue` and
:class:`~repro.service.queue.TenantQuota` (a tenant's budget ceiling is
intersected into each of its jobs); result dedupe comes from the
content-addressed cache (:mod:`repro.service.cache`).

Executor trade-off: ``executor="thread"`` (default) keeps jobs in this
process — live progress events, prompt cooperative cancellation, zero
serialization.  ``executor="process"`` ships each job through its
durable JSON form (:meth:`~repro.service.jobs.JobSpec.to_json`) to a
spawned worker — true parallelism for GIL-bound backends and a proof
the job format is shard-ready, at the cost of intra-job streaming
(events arrive only at completion) and of cancellation only reaching
jobs that have not started.

Cancellation always yields a :class:`JobResult` whose ``partial``
field carries the last observed progress (kind, done, total) — the
promised "partial result" for an aborted run.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from dataclasses import replace as _dc_replace
from functools import partial
from typing import Any, AsyncIterator, Dict, List, Optional

from ..circuits.circuit import QuantumCircuit
from ..obs import metrics as obs_metrics
from ..obs.progress import CancelledError, ProgressEvent
from ..parallel import ProcessPool, ThreadPool
from . import cache as service_cache
from .jobs import JobBatch, JobSpec, validate_task_args
from .queue import PriorityJobQueue, TenantQuota, split_warm

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

_TASK_CAPABILITY = {
    "simulate": "full_state",
    "sample": "sample",
    "expectation": "expectation",
    "single_amplitude": "single_amplitude",
}


def execute_job(job: JobSpec, progress: Optional[Any] = None) -> Any:
    """Run one job through the matching :mod:`repro.core` facade.

    Returns the facade's richest shape: a
    :class:`~repro.core.backend.SimulationResult` for ``simulate``, a
    ``(value, metadata)`` pair for the other tasks.  Module-level so the
    process executor can import it by reference.
    """
    from ..core import backend as core_backend

    kwargs = job.options.as_dict()
    if progress is not None:
        kwargs["progress"] = progress
    task_args = job.task_args
    if job.task == "simulate":
        return core_backend.simulate(job.circuit, backend=job.backend, **kwargs)
    if job.task == "sample":
        seed = kwargs.pop("seed", 0)
        return core_backend.sample(
            job.circuit,
            int(task_args["shots"]),
            backend=job.backend,
            seed=seed,
            with_metadata=True,
            **kwargs,
        )
    if job.task == "expectation":
        return core_backend.expectation(
            job.circuit,
            task_args["pauli"],
            backend=job.backend,
            with_metadata=True,
            **kwargs,
        )
    if job.task == "single_amplitude":
        return core_backend.single_amplitude(
            job.circuit,
            int(task_args["basis_index"]),
            backend=job.backend,
            with_metadata=True,
            **kwargs,
        )
    raise ValueError(f"unknown task {job.task!r}")


def result_metadata(value: Any) -> Dict[str, Any]:
    """The metadata dict of any shape :func:`execute_job` returns."""
    if hasattr(value, "metadata"):
        return value.metadata
    if isinstance(value, tuple) and len(value) == 2:
        return value[1]
    return {}


def _cache_lookup(job: JobSpec) -> Optional[Any]:
    """Service-level warm-cache check for one job.

    The engine always installs an internal progress hook (thread mode),
    which makes the dispatcher skip its own lookup — so the engine
    checks first, with the exact key the dispatcher would store under.
    """
    if job.options.trace:
        return None
    cache = service_cache.active_cache(job.options)
    if cache is None:
        return None
    key = service_cache.request_key(
        job.circuit,
        job.backend,
        _TASK_CAPABILITY[job.task],
        job.options,
        _cache_extra(job),
    )
    if key is None:
        return None
    hit = cache.get(key)
    if hit is None:
        return None
    value, meta, backend_name = hit
    meta["cache"] = {"hit": True, "key": key}
    if job.task == "simulate":
        from ..core.backend import SimulationResult

        return SimulationResult(backend_name, value, meta)
    return value, meta


def _cache_extra(job: JobSpec) -> Optional[Dict[str, Any]]:
    if job.task == "sample":
        return {"shots": int(job.task_args["shots"])}
    if job.task == "expectation":
        return {"pauli": str(job.task_args["pauli"])}
    if job.task == "single_amplitude":
        return {"basis_index": int(job.task_args["basis_index"])}
    return None


def _run_job_thread(job: JobSpec, emit: Any) -> Any:
    """Thread-pool body: warm-cache check, then a hooked facade run."""
    hit = _cache_lookup(job)
    if hit is not None:
        return hit
    return execute_job(job, progress=emit)


def _run_job_process(job_json: str) -> Any:
    """Process-pool body: rebuild the job from its durable JSON form.

    No progress hook crosses the pickle boundary, so the dispatcher's
    own cache lookup applies inside the worker (``REPRO_CACHE`` is
    inherited through the spawn environment).
    """
    from .jobs import JobSpec as _JobSpec

    return execute_job(_JobSpec.from_json(job_json))


@dataclass
class JobResult:
    """Terminal outcome of one job (``await service.result(handle)``).

    ``status`` is :data:`DONE`, :data:`FAILED`, or :data:`CANCELLED`;
    ``value`` is the facade result on success; ``error`` the raised
    exception on failure; ``partial`` the last observed progress
    (``{"kind", "done", "total"}``) for cancelled — and failed — runs;
    ``cache_hit`` whether the value came from the result cache.
    """

    job_id: str
    status: str
    value: Any = None
    error: Optional[BaseException] = None
    partial: Optional[Dict[str, Any]] = None
    cache_hit: bool = False


class JobHandle:
    """Live view of one submitted job."""

    def __init__(self, job: JobSpec, future: "asyncio.Future") -> None:
        self.job = job
        self.status = QUEUED
        self.future = future
        self.cancel_event = threading.Event()
        self.last_event: Optional[ProgressEvent] = None
        self.subscribers: List["asyncio.Queue"] = []
        self._raw_future: Optional[Any] = None

    @property
    def job_id(self) -> str:
        return self.job.job_id

    @property
    def tenant(self) -> str:
        return self.job.tenant

    def partial_progress(self) -> Optional[Dict[str, Any]]:
        event = self.last_event
        if event is None:
            return None
        return {"kind": event.kind, "done": event.done, "total": event.total}


class SimulationService:
    """Async facade running jobs on pooled executors with quotas + cache.

    Use as an async context manager (or call :meth:`start`/:meth:`stop`).
    ``max_workers`` bounds concurrently running jobs; ``executor``
    selects the thread or process pool; ``quotas`` maps tenant names to
    :class:`~repro.service.queue.TenantQuota`.
    """

    def __init__(
        self,
        max_workers: int = 2,
        executor: str = "thread",
        quotas: Optional[Dict[str, TenantQuota]] = None,
        probe_cache: bool = True,
    ) -> None:
        if executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; choose 'thread' or 'process'"
            )
        self.max_workers = max(1, int(max_workers))
        self.executor = executor
        self.probe_cache = bool(probe_cache)
        self._queue = PriorityJobQueue(quotas)
        self._handles: Dict[str, JobHandle] = {}
        self._pool: Optional[Any] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._running = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "SimulationService":
        if self._pool is not None:
            return self
        self._loop = asyncio.get_running_loop()
        pool_cls = ThreadPool if self.executor == "thread" else ProcessPool
        self._pool = pool_cls(self.max_workers)
        self._pool.__enter__()
        return self

    async def stop(self) -> None:
        """Cancel queued jobs, wait out running ones, release the pool."""
        if self._pool is None:
            return
        for handle in list(self._handles.values()):
            if handle.status == QUEUED:
                await self.cancel(handle)
        pending = [
            handle.future
            for handle in self._handles.values()
            if not handle.future.done()
        ]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        pool, self._pool = self._pool, None
        pool.__exit__(None, None, None)

    async def __aenter__(self) -> "SimulationService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.stop()
        return False

    # -- submission ----------------------------------------------------------

    async def submit(
        self,
        circuit: Optional[QuantumCircuit] = None,
        *,
        job: Optional[JobSpec] = None,
        task: str = "simulate",
        backend: str = "auto",
        task_args: Optional[Dict[str, Any]] = None,
        tenant: str = "",
        priority: int = 0,
        probe_cache: Optional[bool] = None,
        **options: Any,
    ) -> JobHandle:
        """Queue one job; returns immediately with its :class:`JobHandle`.

        Accepts either a ``circuit`` plus facade-style keyword options,
        or a pre-built ``job=`` :class:`~repro.service.jobs.JobSpec`.
        Raises :class:`~repro.service.queue.QuotaExceeded` when the
        tenant's ``max_pending`` admission quota is full.

        Warm submissions short-circuit: unless cache probing is off
        (service-wide ``probe_cache=False`` or per-call override), the
        result cache is consulted *here*, and a hit returns an
        already-resolved handle — the job never enters the queue, never
        occupies a worker slot, and never charges the tenant's quotas.
        """
        if self._pool is None:
            raise RuntimeError("service not started (use 'async with')")
        if job is None:
            if circuit is None:
                raise TypeError("submit needs a circuit or a job=JobSpec")
            from ..core.options import SimOptions

            job = JobSpec(
                circuit=circuit,
                task=task,
                backend=backend,
                options=SimOptions.from_kwargs(**options),
                task_args=dict(task_args or {}),
                tenant=tenant,
                priority=priority,
            )
        validate_task_args(job.task, job.task_args)
        quota = self._queue.quota_for(job.tenant)
        effective = quota.effective_budget(job.options.budget)
        if effective is not job.options.budget:
            job = _dc_replace(
                job, options=_dc_replace(job.options, budget=effective)
            )
        probe = self.probe_cache if probe_cache is None else bool(probe_cache)
        if probe:
            hit = _cache_lookup(job)
            if hit is not None:
                return self._serve_warm(job, hit)
        handle = JobHandle(job, self._loop.create_future())
        self._handles[job.job_id] = handle
        try:
            self._queue.push(handle, job.priority, job.tenant)
        except BaseException:
            # A rejected admission must not leave an orphan handle whose
            # future nobody will ever resolve (stop() waits on those).
            del self._handles[job.job_id]
            raise
        self._pump()
        return handle

    def _serve_warm(self, job: JobSpec, hit: Any) -> JobHandle:
        """Resolve a cache hit on the spot, without queue or worker slot."""
        handle = JobHandle(job, self._loop.create_future())
        handle.status = DONE
        self._handles[job.job_id] = handle
        obs_metrics.counter_add(obs_metrics.SERVICE_JOBS_COMPLETED)
        obs_metrics.counter_add(obs_metrics.SERVICE_WARM_SERVED)
        handle.future.set_result(
            JobResult(job.job_id, DONE, value=hit, cache_hit=True)
        )
        return handle

    async def submit_batch(
        self,
        batch: JobBatch,
        *,
        probe_cache: Optional[bool] = None,
    ) -> List[JobHandle]:
        """Submit a :class:`~repro.service.jobs.JobBatch`, hits first.

        Cache-aware batch scheduling: the whole batch is probed against
        the result cache up front (:func:`~repro.service.queue.split_warm`),
        every warm job is served *immediately* with an already-resolved
        handle, and only then are the misses admitted to the queue — in
        their original batch order.  A hit-heavy batch therefore
        completes its hits without waiting behind (or occupying) a
        single worker slot.  Returns one handle per job, in batch order.
        A quota rejection on a cold job propagates after the earlier
        jobs (warm and cold) have been submitted, matching per-job
        ``submit`` semantics.
        """
        if self._pool is None:
            raise RuntimeError("service not started (use 'async with')")
        probe = self.probe_cache if probe_cache is None else bool(probe_cache)
        pairs = split_warm(
            batch.jobs, _cache_lookup if probe else lambda job: None
        )
        handles: List[Optional[JobHandle]] = [None] * len(pairs)
        for index, (job, hit) in enumerate(pairs):
            if hit is not None:
                handles[index] = self._serve_warm(job, hit)
        for index, (job, hit) in enumerate(pairs):
            if hit is None:
                handles[index] = await self.submit(job=job, probe_cache=False)
        return handles

    # -- scheduling ----------------------------------------------------------

    def _pump(self) -> None:
        """Dispatch queued jobs while worker slots and quotas allow."""
        while self._running < self.max_workers:
            handle = self._queue.pop_eligible()
            if handle is None:
                return
            self._dispatch(handle)

    def _dispatch(self, handle: JobHandle) -> None:
        handle.status = RUNNING
        self._running += 1
        if self.executor == "thread":
            raw_future = self._pool.submit(
                _run_job_thread, handle.job, self._make_hook(handle)
            )
        else:
            raw_future = self._pool.submit(
                _run_job_process, handle.job.to_json()
            )
        handle._raw_future = raw_future
        wrapped = asyncio.wrap_future(raw_future, loop=self._loop)
        wrapped.add_done_callback(partial(self._on_done, handle))

    def _make_hook(self, handle: JobHandle) -> Any:
        """The progress callback a thread-mode job runs under.

        Called from the worker thread at every gate-loop/trajectory
        checkpoint: records the latest event, invokes the job's own
        ``progress`` callback (if it supplied one — its exceptions
        cancel, exactly as outside the service), fans the event out to
        async subscribers through the loop, and turns a cancel request
        into a :class:`~repro.obs.progress.CancelledError` raised
        *inside* the simulation — the same cooperative path a user
        callback uses.
        """
        loop = self._loop
        user_callback = handle.job.options.progress

        def hook(event: ProgressEvent) -> None:
            handle.last_event = event
            if user_callback is not None:
                user_callback(event)
            for queue in list(handle.subscribers):
                loop.call_soon_threadsafe(queue.put_nowait, event)
            if handle.cancel_event.is_set():
                raise CancelledError(
                    f"job {handle.job_id} cancelled"
                )

        return hook

    def _on_done(self, handle: JobHandle, wrapped: "asyncio.Future") -> None:
        self._running -= 1
        self._queue.job_finished(handle.tenant)
        try:
            value = wrapped.result()
        except (CancelledError, asyncio.CancelledError):
            handle.status = CANCELLED
            obs_metrics.counter_add(obs_metrics.SERVICE_JOBS_FAILED)
            outcome = JobResult(
                handle.job_id,
                CANCELLED,
                partial=handle.partial_progress(),
            )
        except BaseException as exc:
            handle.status = FAILED
            obs_metrics.counter_add(obs_metrics.SERVICE_JOBS_FAILED)
            outcome = JobResult(
                handle.job_id,
                FAILED,
                error=exc,
                partial=handle.partial_progress(),
            )
        else:
            handle.status = DONE
            obs_metrics.counter_add(obs_metrics.SERVICE_JOBS_COMPLETED)
            meta = result_metadata(value)
            outcome = JobResult(
                handle.job_id,
                DONE,
                value=value,
                cache_hit=bool(meta.get("cache", {}).get("hit")),
            )
        if not handle.future.done():
            handle.future.set_result(outcome)
        self._finish_streams(handle)
        self._pump()

    def _finish_streams(self, handle: JobHandle) -> None:
        for queue in list(handle.subscribers):
            queue.put_nowait(None)
        handle.subscribers.clear()

    # -- consumption ---------------------------------------------------------

    async def result(self, handle: JobHandle) -> JobResult:
        """Wait for a job's terminal :class:`JobResult` (never raises)."""
        return await handle.future

    async def cancel(self, handle: JobHandle) -> bool:
        """Request cancellation; ``True`` if the job will not complete.

        Queued jobs are withdrawn immediately.  Running thread-mode jobs
        stop cooperatively at their next progress checkpoint; running
        process-mode jobs cannot be interrupted (returns ``False``).
        """
        handle.cancel_event.set()
        if handle.status == QUEUED and self._queue.remove(handle):
            handle.status = CANCELLED
            obs_metrics.counter_add(obs_metrics.SERVICE_JOBS_FAILED)
            if not handle.future.done():
                handle.future.set_result(
                    JobResult(
                        handle.job_id,
                        CANCELLED,
                        partial=handle.partial_progress(),
                    )
                )
            self._finish_streams(handle)
            self._pump()
            return True
        if handle.status == RUNNING:
            if self.executor == "process":
                raw = handle._raw_future
                return bool(raw.cancel()) if raw is not None else False
            return True
        return handle.status == CANCELLED

    async def events(self, handle: JobHandle) -> AsyncIterator[ProgressEvent]:
        """Async stream of a job's :class:`ProgressEvent`s until terminal."""
        if handle.future.done():
            return
        queue: "asyncio.Queue" = asyncio.Queue()
        handle.subscribers.append(queue)
        try:
            while True:
                event = await queue.get()
                if event is None:
                    return
                yield event
        finally:
            if queue in handle.subscribers:
                handle.subscribers.remove(queue)

    async def simulate(
        self,
        circuit: QuantumCircuit,
        backend: str = "auto",
        **options: Any,
    ) -> Any:
        """Submit-and-await sugar for one full-state simulation.

        Returns the :class:`~repro.core.backend.SimulationResult`;
        re-raises the job's exception on failure and
        :class:`~repro.obs.progress.CancelledError` on cancellation.
        """
        handle = await self.submit(circuit, backend=backend, **options)
        outcome = await self.result(handle)
        if outcome.status == DONE:
            return outcome.value
        if outcome.status == CANCELLED:
            raise CancelledError(
                f"job {outcome.job_id} cancelled "
                f"(partial progress: {outcome.partial})"
            )
        raise outcome.error

    # -- introspection -------------------------------------------------------

    def handle(self, job_id: str) -> Optional[JobHandle]:
        return self._handles.get(job_id)

    def queue_depth(self) -> int:
        return self._queue.depth()


__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JobHandle",
    "JobResult",
    "QUEUED",
    "RUNNING",
    "SimulationService",
    "execute_job",
    "result_metadata",
]
