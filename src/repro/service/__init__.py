"""Simulation as a service: async jobs, quotas, and result dedupe.

The serving tier that composes the library's primitives into the
"millions of users" story:

- :mod:`repro.service.engine` — :class:`SimulationService`, the asyncio
  front-end (``await service.simulate(...)``, ``submit``/``result``/
  ``cancel``, async :class:`~repro.obs.progress.ProgressEvent` streams);
- :mod:`repro.service.queue` — priority scheduling with per-tenant
  :class:`TenantQuota` admission/concurrency/budget limits;
- :mod:`repro.service.cache` — the content-addressed persistent
  :class:`ResultCache` (also consulted by the core dispatcher whenever
  ``REPRO_CACHE``/``cache=True`` is on, service or not);
- :mod:`repro.service.jobs` — the durable JSON :class:`JobSpec`/
  :class:`JobBatch` format that makes jobs shardable across processes;
- :mod:`repro.service.remote` — distributed serving: the versioned wire
  protocol, shard worker processes, and the :class:`ClusterScheduler`
  with cache-affinity routing and fault-tolerant remote execution.
"""

from .cache import ResultCache, default_cache, request_key, reset_default_cache
from .engine import (
    JobHandle,
    JobResult,
    SimulationService,
    execute_job,
)
from .jobs import JobBatch, JobSpec, circuit_from_dict, circuit_to_dict
from .queue import PriorityJobQueue, QuotaExceeded, TenantQuota
from .remote import (
    ClusterScheduler,
    LocalCluster,
    ShardProcess,
    ShardServer,
)

__all__ = [
    "ClusterScheduler",
    "JobBatch",
    "JobHandle",
    "JobResult",
    "JobSpec",
    "LocalCluster",
    "PriorityJobQueue",
    "QuotaExceeded",
    "ResultCache",
    "ShardProcess",
    "ShardServer",
    "SimulationService",
    "TenantQuota",
    "circuit_from_dict",
    "circuit_to_dict",
    "default_cache",
    "execute_job",
    "request_key",
    "reset_default_cache",
]
