"""Zero-copy shared-memory data plane for the process-pool layer.

The pool in :mod:`repro.parallel` moves every task result through a
pickle pipe.  For the library's small payloads (counts dictionaries,
amplitude pairs, chunk statistics) that is fine; for the big ones —
statevectors, density matrices, ``(2**n, batch)`` trajectory stacks,
per-chunk probability partials — pickling costs a serialize copy, a
pipe write, a pipe read, and a deserialize copy *per array*.  This
module replaces that with POSIX shared memory
(:mod:`multiprocessing.shared_memory`):

- a worker (or the parent, for fan-out) copies a large array **once**
  into a named segment and ships only a tiny :class:`ShmArray` handle
  (name, shape, dtype) through the pipe;
- the receiver attaches and gets a numpy view of the same physical
  pages — no serialization, no second copy (``attach(copy=False)``
  keeps the mapping alive via a finalizer and unlinks the name
  immediately, so a crash after attach cannot leak the segment).

Arrays below :func:`min_bytes` (default 1 MiB,
``REPRO_SHM_MIN_BYTES``) travel through the normal pickle path — the
segment-creation syscalls are not worth it for small payloads.  The
whole plane is disabled by ``REPRO_SHM=0`` or automatically on
platforms where :mod:`multiprocessing.shared_memory` is unavailable,
in which case every helper degrades to a pickling no-op.

Cleanup protocol
----------------

Shared memory outlives processes, so segments must be unlinked exactly
once even when a worker crashes mid-chunk or the parent takes a
``KeyboardInterrupt``:

1. every segment created under a pooled run carries the run's *token*
   in its name (``repro_shm_<token>_...``); the creating process
   unregisters it from its own ``resource_tracker`` (ownership moves to
   the consumer, so the tracker must not double-unlink or warn);
2. the consumer unlinks the name the moment it attaches;
3. when the pool drains — normally or on any error — the parent sweeps
   ``/dev/shm`` for leftover names carrying the run token and unlinks
   them (this catches segments whose handle never made it back from a
   crashed worker);
4. an ``atexit`` hook sweeps any tokens that were still live when the
   process exits (hard aborts between 2 and 3).
"""

from __future__ import annotations

import atexit
import os
import secrets
import weakref
from dataclasses import dataclass
from typing import Any, Optional, Set, Tuple

import numpy as np

try:  # pragma: no cover - import succeeds everywhere we run CI
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - platforms without POSIX shm
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

SHM_ENV_VAR = "REPRO_SHM"
"""Environment variable gating the shared-memory plane (``0`` disables).

The plane is *on* by default wherever
:mod:`multiprocessing.shared_memory` works; set ``REPRO_SHM=0`` to force
every pooled payload back through the pickle path (the results are
bitwise identical either way — shm changes how bytes travel, never
which bytes).
"""

SHM_MIN_BYTES_ENV_VAR = "REPRO_SHM_MIN_BYTES"
"""Environment variable overriding the minimum payload size (bytes)."""

DEFAULT_MIN_BYTES = 1 << 20
"""Arrays smaller than this pickle; segment syscalls don't pay below it."""

_NAME_PREFIX = "repro_shm"

_SHM_DIR = "/dev/shm"

_TRUE_SET = frozenset({"", "1", "true", "yes", "on"})

_FIELDS_ATTR = "_shm_fields_"
"""Objects advertising array attributes for the transfer encoder.

A class sets ``_shm_fields_ = ("state", ...)`` to have those attributes
moved through shared memory when an instance crosses the pool boundary
(e.g. :class:`repro.core.backend.SimulationResult`).
"""


def _unregister(name: str) -> None:
    """Drop a segment from this process's resource tracker.

    Ownership of a segment transfers to whoever consumes the handle;
    the creating process must forget it or its tracker will unlink the
    (already unlinked) name at shutdown and emit leak warnings.
    """
    if resource_tracker is None:  # pragma: no cover
        return
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def available() -> bool:
    """Whether POSIX shared memory works on this platform (probed once)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        if shared_memory is None:
            _AVAILABLE = False
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=16)
                probe.close()
                probe.unlink()  # unlink() also unregisters from the tracker
                _AVAILABLE = True
            except (OSError, ValueError):  # pragma: no cover
                _AVAILABLE = False
    return _AVAILABLE


_AVAILABLE: Optional[bool] = None


def enabled() -> bool:
    """Shared-memory transfer policy: available and not opted out."""
    if os.environ.get(SHM_ENV_VAR, "").strip().lower() not in _TRUE_SET:
        return False
    return available()


def min_bytes() -> int:
    """Size threshold below which payloads stay on the pickle path."""
    spec = os.environ.get(SHM_MIN_BYTES_ENV_VAR, "").strip()
    if spec:
        try:
            return max(int(spec), 0)
        except ValueError:
            pass
    return DEFAULT_MIN_BYTES


def new_token() -> str:
    """A fresh run token tying a pooled run's segments together."""
    return f"{os.getpid():x}{secrets.token_hex(4)}"


# -- the handle ---------------------------------------------------------------


@dataclass(frozen=True)
class ShmArray:
    """A picklable handle to a numpy array living in a shared segment.

    The handle is what crosses the pool's pickle pipe: ~100 bytes no
    matter how large the array.  ``attach()`` reconstructs the array on
    the other side; with ``copy=False`` (the default) the returned array
    is a zero-copy view whose lifetime keeps the mapping open, and the
    segment *name* is unlinked immediately so nothing can leak it.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize

    @classmethod
    def create_from(
        cls, array: np.ndarray, token: Optional[str] = None
    ) -> "ShmArray":
        """Copy ``array`` into a fresh named segment and return its handle.

        This is the single copy of the shm handoff (the pickle path pays
        at least two plus the pipe traffic).  The segment is named under
        ``token`` (default: the active pooled-run token) so the parent's
        teardown sweep can find it even if this process dies before the
        handle is delivered.
        """
        if shared_memory is None:  # pragma: no cover
            raise RuntimeError("shared memory is unavailable on this platform")
        token = token or current_token() or new_token()
        name = f"{_NAME_PREFIX}_{token}_{secrets.token_hex(6)}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(int(array.nbytes), 1)
        )
        try:
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=segment.buf
            )
            view[...] = array
        finally:
            segment.close()
        # Ownership moves to the consumer of the handle.
        _unregister(name)
        return cls(name, tuple(array.shape), np.dtype(array.dtype).str)

    def attach(self, copy: bool = False, unlink: bool = True) -> np.ndarray:
        """Materialize the array on this side of the pipe.

        ``copy=False`` returns a zero-copy view backed by the mapping;
        a finalizer on the array closes the mapping when the last view
        is garbage collected.  ``unlink=True`` (default) removes the
        segment *name* right away — on POSIX the pages live until the
        last mapping closes, so views stay valid while nothing can leak
        the name afterwards.  Use ``unlink=False`` for fan-out reads
        where several workers attach the same segment; the publisher
        stays responsible for :meth:`unlink`.
        """
        if shared_memory is None:  # pragma: no cover
            raise RuntimeError("shared memory is unavailable on this platform")
        # On CPython 3.11 attaching registers the name with this process's
        # resource tracker and unlink() unregisters it, so the bookkeeping
        # below stays balanced: unlink here (the normal consume path), or
        # explicitly unregister when the publisher keeps ownership.
        segment = shared_memory.SharedMemory(name=self.name)
        try:
            view = np.ndarray(self.shape, dtype=self.dtype, buffer=segment.buf)
            if copy:
                result = np.array(view)
            else:
                result = view
                weakref.finalize(result, segment.close)
        finally:
            if copy:
                segment.close()
            if unlink:
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    _unregister(self.name)
            else:
                _unregister(self.name)
        return result

    def unlink(self) -> None:
        """Remove the segment name; safe to call when it is already gone."""
        if shared_memory is None:  # pragma: no cover
            return
        try:
            segment = shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:
            return
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - lost a race
            _unregister(self.name)


# -- run-token bookkeeping ----------------------------------------------------

_ACTIVE_TOKEN: Optional[str] = None
_LIVE_TOKENS: Set[str] = set()


def current_token() -> Optional[str]:
    """The pooled-run token active in this process (worker side)."""
    return _ACTIVE_TOKEN


def set_current_token(token: Optional[str]) -> Optional[str]:
    """Install the active run token; returns the previous one."""
    global _ACTIVE_TOKEN
    previous, _ACTIVE_TOKEN = _ACTIVE_TOKEN, token
    return previous


def track_token(token: str) -> None:
    """Register a run token for teardown/atexit sweeping (parent side)."""
    _LIVE_TOKENS.add(token)


def release_token(token: str) -> None:
    """Sweep a run's leftover segments and stop tracking the token.

    Called from the pool teardown path on *every* exit — normal drain,
    task exception, ``KeyboardInterrupt`` — so segments created by a
    worker that died mid-chunk (whose handles never reached the parent)
    are unlinked here.
    """
    _LIVE_TOKENS.discard(token)
    sweep_segments(token)


def sweep_segments(token: str) -> int:
    """Unlink every leftover ``/dev/shm`` entry carrying ``token``.

    Returns the number of segments removed.  On platforms without a
    scannable shm directory this is a no-op — there, cleanup relies on
    the attach-time unlink, which covers every delivered handle.
    """
    prefix = f"{_NAME_PREFIX}_{token}_"
    removed = 0
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return 0
    for entry in entries:
        if not entry.startswith(prefix):
            continue
        ShmArray(entry, (1,), "<f8").unlink()
        removed += 1
    return removed


def leaked_segments(token: Optional[str] = None) -> list:
    """Names of live ``repro_shm`` segments (optionally one run's). Test hook."""
    prefix = _NAME_PREFIX if token is None else f"{_NAME_PREFIX}_{token}_"
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(entry for entry in entries if entry.startswith(prefix))


@atexit.register
def _sweep_all_live_tokens() -> None:  # pragma: no cover - process teardown
    for token in list(_LIVE_TOKENS):
        sweep_segments(token)
    _LIVE_TOKENS.clear()


# -- transfer encoding --------------------------------------------------------


class TransferStats:
    """Per-run accounting of what actually moved through shared memory."""

    __slots__ = ("shm_bytes", "segments")

    def __init__(self) -> None:
        self.shm_bytes = 0
        self.segments = 0

    def note(self, nbytes: int) -> None:
        self.shm_bytes += int(nbytes)
        self.segments += 1


class _Encoded:
    """Marker wrapping a container whose large arrays went through shm."""

    __slots__ = ("payload", "shm_bytes", "segments")

    def __init__(self, payload: Any, shm_bytes: int, segments: int) -> None:
        self.payload = payload
        self.shm_bytes = shm_bytes
        self.segments = segments


def encode_result(value: Any, token: str, threshold: int) -> Any:
    """Replace large arrays inside ``value`` with :class:`ShmArray` handles.

    Recurses through lists, tuples, and dict values, and through the
    attributes any object advertises via ``_shm_fields_``.  Arrays below
    ``threshold`` bytes (and everything else) pass through untouched, so
    the pickle that follows carries only small objects plus handles.
    Returns the value wrapped in an envelope when at least one array
    moved; the unmodified value otherwise.
    """
    stats = TransferStats()
    encoded = _encode(value, token, threshold, stats)
    if stats.segments == 0:
        return value
    return _Encoded(encoded, stats.shm_bytes, stats.segments)


def _encode(value: Any, token: str, threshold: int, stats: TransferStats) -> Any:
    if isinstance(value, np.ndarray):
        if value.nbytes >= threshold:
            handle = ShmArray.create_from(value, token)
            stats.note(handle.nbytes)
            return handle
        return value
    if isinstance(value, tuple):
        return tuple(_encode(item, token, threshold, stats) for item in value)
    if isinstance(value, list):
        return [_encode(item, token, threshold, stats) for item in value]
    if isinstance(value, dict):
        return {
            key: _encode(item, token, threshold, stats)
            for key, item in value.items()
        }
    fields = getattr(type(value), _FIELDS_ATTR, None)
    if fields:
        for field in fields:
            current = getattr(value, field, None)
            if current is not None:
                setattr(value, field, _encode(current, token, threshold, stats))
        return value
    return value


def decode_result(value: Any, stats: Optional[TransferStats] = None) -> Any:
    """Invert :func:`encode_result`: attach every handle, unlink its name."""
    if not isinstance(value, _Encoded):
        return value
    if stats is not None:
        stats.shm_bytes += value.shm_bytes
        stats.segments += value.segments
    return _decode(value.payload)


def _decode(value: Any) -> Any:
    if isinstance(value, ShmArray):
        return value.attach()
    if isinstance(value, tuple):
        return tuple(_decode(item) for item in value)
    if isinstance(value, list):
        return [_decode(item) for item in value]
    if isinstance(value, dict):
        return {key: _decode(item) for key, item in value.items()}
    fields = getattr(type(value), _FIELDS_ATTR, None)
    if fields:
        for field in fields:
            current = getattr(value, field, None)
            if current is not None:
                setattr(value, field, _decode(current))
        return value
    return value
