"""Decision-diagram equivalence checking (paper Sec. III, ref. [20]).

Checks ``G' . G^dagger = I`` without ever holding two full unitaries: the
*alternating* scheme applies gates of ``G`` from one side and inverted gates
of ``G'`` from the other, steering the intermediate decision diagram to stay
close to the (linear-size) identity DD throughout.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..circuits.circuit import Operation, QuantumCircuit
from ..dd.package import BYTES_PER_NODE, DDPackage
from ..resources import ResourceBudget


def _unitary_ops(circuit: QuantumCircuit) -> List[Operation]:
    ops = []
    for op in circuit.operations:
        if op.is_barrier:
            continue
        if op.is_measurement:
            raise ValueError("equivalence checking requires measurement-free circuits")
        ops.append(op)
    return ops


def check_equivalence_dd(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    strategy: str = "proportional",
    package: Optional[DDPackage] = None,
    budget: Optional[ResourceBudget] = None,
) -> bool:
    """DD-based equivalence up to global phase.

    Strategies: ``"proportional"`` interleaves the two circuits in
    proportion to their gate counts (default, keeps the intermediate DD
    small when the circuits are similar); ``"sequential"`` multiplies all of
    ``A`` first, then un-multiplies ``B``; ``"naive"`` builds both full
    functionality DDs and compares them.

    With a ``budget`` (and no explicit ``package``), the package's unique
    table is capped at the tighter of the node and memory budgets, and
    the gate loop checks the wall-clock deadline; a tripped cap raises
    :class:`~repro.resources.ResourceExhausted`.
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        return False
    n = circuit_a.num_qubits
    if package is not None:
        pkg = package
    elif budget is not None:
        pkg = DDPackage(max_nodes=budget.node_limit(BYTES_PER_NODE))
    else:
        pkg = DDPackage()
    deadline = budget.deadline() if budget is not None else None
    ops_a = _unitary_ops(circuit_a)
    ops_b = _unitary_ops(circuit_b)

    if strategy == "naive":
        e_a = pkg.identity_edge(n)
        for op in ops_a:
            if deadline is not None:
                deadline.check(backend="dd", context="naive equivalence check")
            e_a = pkg.mm_multiply(pkg.gate_edge(op, n), e_a)
        e_b = pkg.identity_edge(n)
        for op in ops_b:
            if deadline is not None:
                deadline.check(backend="dd", context="naive equivalence check")
            e_b = pkg.mm_multiply(pkg.gate_edge(op, n), e_b)
        if e_a.node is not e_b.node:
            return False
        ratio = abs(e_a.weight) / abs(e_b.weight) if e_b.weight != 0 else 0.0
        return abs(ratio - 1.0) <= 1e-8

    edge = pkg.identity_edge(n)
    for side, op in _interleave(ops_a, ops_b, strategy):
        if deadline is not None:
            deadline.check(backend="dd", context="alternating equivalence check")
        if side == "left":
            # Apply a gate of A from the left: edge <- G_i . edge
            edge = pkg.mm_multiply(pkg.gate_edge(op, n), edge)
        else:
            # Un-apply a gate of B from the right: edge <- edge . H_j^dagger
            inverse = op.inverse()
            edge = pkg.mm_multiply(edge, pkg.gate_edge(inverse, n))
    return pkg.is_identity(edge, n, up_to_phase=True)


def _interleave(
    ops_a: List[Operation], ops_b: List[Operation], strategy: str
) -> Iterator[Tuple[str, Operation]]:
    if strategy == "sequential":
        for op in ops_a:
            yield "left", op
        for op in ops_b:
            yield "right", op
        return
    if strategy != "proportional":
        raise ValueError(f"unknown strategy '{strategy}'")
    na, nb = len(ops_a), len(ops_b)
    ia = ib = 0
    # Walk both lists so that progress fractions stay balanced.
    while ia < na or ib < nb:
        if ib >= nb or (ia < na and ia * max(nb, 1) <= ib * max(na, 1)):
            yield "left", ops_a[ia]
            ia += 1
        else:
            yield "right", ops_b[ib]
            ib += 1


def peak_nodes_alternating(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    strategy: str = "proportional",
) -> Tuple[bool, int]:
    """Like :func:`check_equivalence_dd` but also reports the peak DD size."""
    n = circuit_a.num_qubits
    pkg = DDPackage()
    edge = pkg.identity_edge(n)
    peak = pkg.count_nodes(edge)
    for side, op in _interleave(
        _unitary_ops(circuit_a), _unitary_ops(circuit_b), strategy
    ):
        if side == "left":
            edge = pkg.mm_multiply(pkg.gate_edge(op, n), edge)
        else:
            edge = pkg.mm_multiply(edge, pkg.gate_edge(op.inverse(), n))
        peak = max(peak, pkg.count_nodes(edge))
    return pkg.is_identity(edge, n, up_to_phase=True), peak
