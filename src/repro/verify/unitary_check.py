"""Array-based equivalence checking: build both unitaries and compare.

The brute-force baseline (paper Sec. II): exact, simple, exponential in
memory — the reference point the structured checkers are measured against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..arrays.unitary import allclose_up_to_global_phase, circuit_unitary
from ..circuits.circuit import QuantumCircuit
from ..resources import ResourceBudget


def check_equivalence_unitary(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    up_to_global_phase: bool = True,
    tol: float = 1e-8,
    budget: Optional[ResourceBudget] = None,
) -> bool:
    """Dense unitary comparison of two measurement-free circuits.

    With a ``budget``, the ``2**n x 2**n`` unitary allocation is checked
    against the memory cap *before* anything is built;
    :class:`~repro.resources.MemoryBudgetExceeded` is raised when the
    dense comparison cannot fit (``check_all_methods`` records this as
    ``"skipped: budget"``).
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        return False
    if budget is not None:
        n = circuit_a.num_qubits
        budget.check_memory(
            16 << (2 * n),
            backend="arrays",
            what=f"dense {n}-qubit unitary",
        )
    ua = circuit_unitary(circuit_a.without_measurements())
    ub = circuit_unitary(circuit_b.without_measurements())
    if up_to_global_phase:
        return allclose_up_to_global_phase(ua, ub, tol)
    return bool(np.allclose(ua, ub, atol=tol))
