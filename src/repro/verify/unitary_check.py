"""Array-based equivalence checking: build both unitaries and compare.

The brute-force baseline (paper Sec. II): exact, simple, exponential in
memory — the reference point the structured checkers are measured against.
"""

from __future__ import annotations

import numpy as np

from ..arrays.unitary import allclose_up_to_global_phase, circuit_unitary
from ..circuits.circuit import QuantumCircuit


def check_equivalence_unitary(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    up_to_global_phase: bool = True,
    tol: float = 1e-8,
) -> bool:
    """Dense unitary comparison of two measurement-free circuits."""
    if circuit_a.num_qubits != circuit_b.num_qubits:
        return False
    ua = circuit_unitary(circuit_a.without_measurements())
    ub = circuit_unitary(circuit_b.without_measurements())
    if up_to_global_phase:
        return allclose_up_to_global_phase(ua, ub, tol)
    return bool(np.allclose(ua, ub, atol=tol))
