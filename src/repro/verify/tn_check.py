"""Tensor-network equivalence checking (paper Sec. IV flavour).

Two complementary checks:

- :func:`hilbert_schmidt_overlap`: contract the closed network
  ``Tr(A^dagger B)`` — exact, one scalar, no full unitary ever built.
- :func:`check_equivalence_random_stimuli`: run both circuits on random
  computational basis states and compare output amplitudes on random
  outputs; cheap, probabilistic (one-sided error).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..resources import ResourceBudget
from ..tn.circuit_tn import amplitude
from ..tn.network import TensorNetwork


def hilbert_schmidt_overlap(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    budget: Optional[ResourceBudget] = None,
) -> complex:
    """``Tr(A^dagger B) / 2^n`` via a single closed tensor network.

    The value has modulus 1 iff the circuits are equivalent up to global
    phase.
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        raise ValueError("circuits act on different register sizes")
    n = circuit_a.num_qubits
    net_b, out_b = circuit_to_network_unitary(circuit_b)
    net_a, out_a = circuit_to_network_unitary(circuit_a)
    network = TensorNetwork()
    rename_b = {}
    for tensor in net_b.tensors:
        network.add(tensor.relabeled({i: f"B_{i}" for i in tensor.indices}))
    for tensor in net_a.tensors:
        network.add(
            tensor.relabeled({i: f"A_{i}" for i in tensor.indices}).conj()
        )
    # Glue: A's outputs to B's outputs, A's inputs to B's inputs.
    for q in range(n):
        network.add(
            _identity_bridge(f"A_{out_a[0][q]}", f"B_{out_b[0][q]}")
        )
        network.add(
            _identity_bridge(f"A_{out_a[1][q]}", f"B_{out_b[1][q]}")
        )
    value = network.contract_all(budget=budget).scalar()
    return value / (2**n)


def _identity_bridge(left: str, right: str):
    from ..tn.tensor import Tensor

    return Tensor(np.eye(2, dtype=np.complex128), [left, right])


def circuit_to_network_unitary(circuit: QuantumCircuit):
    """Network of the circuit's *unitary* (open inputs and outputs).

    Returns ``(network, (output_indices, input_indices))``.
    """
    from ..tn.circuit_tn import operation_tensor

    n = circuit.num_qubits
    network = TensorNetwork()
    wire = {}
    counter = {}
    input_indices = []
    for q in range(n):
        index = f"q{q}_in"
        wire[q] = index
        counter[q] = 0
        input_indices.append(index)
    for op in circuit.operations:
        if op.is_barrier:
            continue
        if op.is_measurement:
            raise ValueError("measurement-free circuit required")
        if op.gate.num_qubits == 0 and not op.controls:
            from ..tn.tensor import Tensor

            network.add(Tensor(np.asarray(op.gate.matrix[0, 0]), []))
            continue
        qubits = list(op.targets) + list(op.controls)
        wire_in = {q: wire[q] for q in qubits}
        wire_out = {}
        for q in qubits:
            counter[q] += 1
            wire_out[q] = f"q{q}_{counter[q]}"
        network.add(operation_tensor(op, wire_in, wire_out))
        for q in qubits:
            wire[q] = wire_out[q]
    output_indices = [wire[q] for q in range(n)]
    # Idle qubits: identity bridge so inputs and outputs stay distinct.
    for q in range(n):
        if output_indices[q] == input_indices[q]:
            out_name = f"q{q}_out"
            network.add(_identity_bridge(input_indices[q], out_name))
            output_indices[q] = out_name
    return network, (output_indices, input_indices)


def check_equivalence_tn(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    tol: float = 1e-8,
    budget: Optional[ResourceBudget] = None,
) -> bool:
    """Exact equivalence up to global phase via the trace overlap.

    With a ``budget``, the closed network's plan cost model is checked
    before contracting (see :meth:`TensorNetwork.contract_all`).
    """
    overlap = hilbert_schmidt_overlap(
        circuit_a.without_measurements(),
        circuit_b.without_measurements(),
        budget=budget,
    )
    return abs(abs(overlap) - 1.0) <= tol


def check_equivalence_random_stimuli(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    num_stimuli: int = 8,
    amplitudes_per_stimulus: int = 4,
    seed: int = 0,
    tol: float = 1e-8,
    budget: Optional[ResourceBudget] = None,
) -> bool:
    """Probabilistic check: compare single amplitudes on random basis inputs.

    Each (input basis state, output basis state) pair is evaluated as one
    capped tensor-network contraction per circuit; global-phase alignment is
    estimated from the first non-negligible amplitude pair.
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        return False
    n = circuit_a.num_qubits
    rng = np.random.default_rng(seed)
    a_clean = circuit_a.without_measurements()
    b_clean = circuit_b.without_measurements()
    phase: Optional[complex] = None
    for _ in range(num_stimuli):
        basis_in = int(rng.integers(0, 2**n))
        for _ in range(amplitudes_per_stimulus):
            basis_out = int(rng.integers(0, 2**n))
            amp_a = amplitude(
                a_clean, basis_out, initial_bits=basis_in, budget=budget
            )
            amp_b = amplitude(
                b_clean, basis_out, initial_bits=basis_in, budget=budget
            )
            if abs(amp_a) <= tol and abs(amp_b) <= tol:
                continue
            if abs(amp_a) <= tol or abs(amp_b) <= tol:
                return False
            if phase is None:
                phase = amp_a / amp_b
                if abs(abs(phase) - 1.0) > 1e-6:
                    return False
            if abs(amp_a - phase * amp_b) > 1e-6:
                return False
    return True
