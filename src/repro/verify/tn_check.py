"""Tensor-network equivalence checking (paper Sec. IV flavour).

Two complementary checks:

- :func:`hilbert_schmidt_overlap`: contract the closed network
  ``Tr(A^dagger B)`` — exact, one scalar, no full unitary ever built.
- :func:`check_equivalence_random_stimuli`: run both circuits on random
  computational basis states and compare output amplitudes on random
  outputs; cheap, probabilistic (one-sided error).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from .. import parallel_shm
from ..circuits.circuit import QuantumCircuit
from ..obs import trace as obs_trace
from ..obs.progress import ProgressReporter
from ..parallel import configured_jobs, task_stream
from ..parallel_shm import ShmArray
from ..resources import ResourceBudget
from ..tn.circuit_tn import amplitude
from ..tn.network import TensorNetwork


def hilbert_schmidt_overlap(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    budget: Optional[ResourceBudget] = None,
) -> complex:
    """``Tr(A^dagger B) / 2^n`` via a single closed tensor network.

    The value has modulus 1 iff the circuits are equivalent up to global
    phase.
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        raise ValueError("circuits act on different register sizes")
    n = circuit_a.num_qubits
    net_b, out_b = circuit_to_network_unitary(circuit_b)
    net_a, out_a = circuit_to_network_unitary(circuit_a)
    network = TensorNetwork()
    rename_b = {}
    for tensor in net_b.tensors:
        network.add(tensor.relabeled({i: f"B_{i}" for i in tensor.indices}))
    for tensor in net_a.tensors:
        network.add(
            tensor.relabeled({i: f"A_{i}" for i in tensor.indices}).conj()
        )
    # Glue: A's outputs to B's outputs, A's inputs to B's inputs.
    for q in range(n):
        network.add(
            _identity_bridge(f"A_{out_a[0][q]}", f"B_{out_b[0][q]}")
        )
        network.add(
            _identity_bridge(f"A_{out_a[1][q]}", f"B_{out_b[1][q]}")
        )
    value = network.contract_all(budget=budget).scalar()
    return value / (2**n)


def _identity_bridge(left: str, right: str):
    from ..tn.tensor import Tensor

    return Tensor(np.eye(2, dtype=np.complex128), [left, right])


def circuit_to_network_unitary(circuit: QuantumCircuit):
    """Network of the circuit's *unitary* (open inputs and outputs).

    Returns ``(network, (output_indices, input_indices))``.
    """
    from ..tn.circuit_tn import operation_tensor

    n = circuit.num_qubits
    network = TensorNetwork()
    wire = {}
    counter = {}
    input_indices = []
    for q in range(n):
        index = f"q{q}_in"
        wire[q] = index
        counter[q] = 0
        input_indices.append(index)
    for op in circuit.operations:
        if op.is_barrier:
            continue
        if op.is_measurement:
            raise ValueError("measurement-free circuit required")
        if op.gate.num_qubits == 0 and not op.controls:
            from ..tn.tensor import Tensor

            network.add(Tensor(np.asarray(op.gate.matrix[0, 0]), []))
            continue
        qubits = list(op.targets) + list(op.controls)
        wire_in = {q: wire[q] for q in qubits}
        wire_out = {}
        for q in qubits:
            counter[q] += 1
            wire_out[q] = f"q{q}_{counter[q]}"
        network.add(operation_tensor(op, wire_in, wire_out))
        for q in qubits:
            wire[q] = wire_out[q]
    output_indices = [wire[q] for q in range(n)]
    # Idle qubits: identity bridge so inputs and outputs stay distinct.
    for q in range(n):
        if output_indices[q] == input_indices[q]:
            out_name = f"q{q}_out"
            network.add(_identity_bridge(input_indices[q], out_name))
            output_indices[q] = out_name
    return network, (output_indices, input_indices)


def check_equivalence_tn(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    tol: float = 1e-8,
    budget: Optional[ResourceBudget] = None,
) -> bool:
    """Exact equivalence up to global phase via the trace overlap.

    With a ``budget``, the closed network's plan cost model is checked
    before contracting (see :meth:`TensorNetwork.contract_all`).
    """
    overlap = hilbert_schmidt_overlap(
        circuit_a.without_measurements(),
        circuit_b.without_measurements(),
        budget=budget,
    )
    return abs(abs(overlap) - 1.0) <= tol


@dataclass(frozen=True)
class _StimulusSlice:
    """One stimulus's row of a shared pre-generated stimulus table.

    Input fan-out: the parent publishes the whole ``(num_stimuli,
    amplitudes, 2)`` table as a *single* shared-memory segment and every
    task pickles only this tiny handle-plus-row marker.  Workers attach
    with ``unlink=False`` — many readers of one segment — so the
    publisher keeps ownership and sweeps the name when the pool drains.
    """

    handle: ShmArray
    row: int

    def resolve(self) -> List[Tuple[int, int]]:
        table = self.handle.attach(unlink=False)
        return [(int(i), int(o)) for i, o in table[self.row]]


def _stimulus_worker(
    spec: Tuple[
        QuantumCircuit,
        QuantumCircuit,
        Union[List[Tuple[int, int]], _StimulusSlice],
        Optional[ResourceBudget],
    ],
) -> List[Tuple[complex, complex]]:
    """Module-level (picklable) stimulus task: amplitude pairs only.

    Workers perform the expensive tensor-network contractions; *all*
    verdict logic — tolerance comparisons and the global-phase estimate,
    which depends on the order pairs are seen in — stays in the parent so
    the verdict is identical at any ``n_jobs``.
    """
    circuit_a, circuit_b, pairs, budget = spec
    if isinstance(pairs, _StimulusSlice):
        pairs = pairs.resolve()
    results: List[Tuple[complex, complex]] = []
    with obs_trace.span("verify.stimulus", pairs=len(pairs)):
        for basis_in, basis_out in pairs:
            amp_a = amplitude(
                circuit_a, basis_out, initial_bits=basis_in, budget=budget
            )
            amp_b = amplitude(
                circuit_b, basis_out, initial_bits=basis_in, budget=budget
            )
            results.append((amp_a, amp_b))
    return results


def check_equivalence_random_stimuli(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    num_stimuli: int = 8,
    amplitudes_per_stimulus: int = 4,
    seed: int = 0,
    tol: float = 1e-8,
    budget: Optional[ResourceBudget] = None,
    n_jobs: Optional[int] = None,
    progress: Optional[callable] = None,
    executor: Optional[str] = None,
    shm: Optional[bool] = None,
) -> bool:
    """Probabilistic check: compare single amplitudes on random basis inputs.

    Each (input basis state, output basis state) pair is evaluated as one
    capped tensor-network contraction per circuit; global-phase alignment is
    estimated from the first non-negligible amplitude pair.

    With ``n_jobs`` (or ``REPRO_JOBS`` in the environment) the stimuli are
    pre-generated — same RNG draw order as the serial loop — and their
    contractions run on a pool, one stimulus per task (``executor``
    selects worker processes or in-process threads; ``shm`` overrides
    the shared-memory transfer policy).  Where the shm policy allows,
    the pre-generated stimulus table is *fanned out* through a single
    shared segment that every worker attaches read-only
    (``attach(unlink=False)``) instead of pickling a pair list per
    task.  The parent consumes results in stimulus order
    and applies the serial verdict logic verbatim, so the verdict is
    deterministic and identical to a serial run; the first
    counterexample stops consumption and the pool cancels the remaining
    stimuli.  Workers inherit ``budget.share(n_jobs)``.
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        return False
    n = circuit_a.num_qubits
    rng = np.random.default_rng(seed)
    a_clean = circuit_a.without_measurements()
    b_clean = circuit_b.without_measurements()
    # Pre-generate every stimulus with the same draw order the serial
    # loop used (basis_in, then this stimulus's basis_outs), so seeded
    # stimuli are identical with and without parallelism.
    stimuli: List[List[Tuple[int, int]]] = []
    for _ in range(num_stimuli):
        basis_in = int(rng.integers(0, 2**n))
        stimuli.append(
            [
                (basis_in, int(rng.integers(0, 2**n)))
                for _ in range(amplitudes_per_stimulus)
            ]
        )
    jobs = configured_jobs(n_jobs) or 1
    worker_budget = (
        budget.share(jobs) if budget is not None and jobs > 1 else budget
    )
    # Input fan-out: publish the pre-generated stimulus table once and
    # hand every worker the same segment (attach(unlink=False)) instead
    # of pickling a pair list per task.  Bitwise identical to the pickle
    # path — shm changes how the stimuli travel, never their values.
    fanout_token: Optional[str] = None
    if (
        jobs > 1
        and shm is not False
        and n < 63  # basis states must fit the int64 table
        and parallel_shm.available()
        and (shm is True or parallel_shm.enabled())
    ):
        table = np.asarray(stimuli, dtype=np.int64)
        fanout_token = parallel_shm.new_token()
        parallel_shm.track_token(fanout_token)
        handle = ShmArray.create_from(table, fanout_token)
        specs = [
            (a_clean, b_clean, _StimulusSlice(handle, row), worker_budget)
            for row in range(num_stimuli)
        ]
    else:
        specs = [
            (a_clean, b_clean, pairs, worker_budget) for pairs in stimuli
        ]
    phase: Optional[complex] = None
    reporter = ProgressReporter.maybe(
        progress, "stimuli", total=num_stimuli, backend="tn"
    )
    try:
        with task_stream(
            _stimulus_worker, specs, n_jobs=jobs, executor=executor, shm=shm
        ) as results:
            for pair_results in results:
                for amp_a, amp_b in pair_results:
                    if abs(amp_a) <= tol and abs(amp_b) <= tol:
                        continue
                    if abs(amp_a) <= tol or abs(amp_b) <= tol:
                        return False
                    if phase is None:
                        phase = amp_a / amp_b
                        if abs(abs(phase) - 1.0) > 1e-6:
                            return False
                    if abs(amp_a - phase * amp_b) > 1e-6:
                        return False
                if reporter is not None:
                    reporter.step()
    finally:
        if fanout_token is not None:
            parallel_shm.release_token(fanout_token)
    if reporter is not None:
        reporter.close()
    return True
