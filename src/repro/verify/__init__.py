"""Verification (equivalence checking) over all four data structures."""

from .dd_check import check_equivalence_dd, peak_nodes_alternating
from .stab_check import (
    check_equivalence_stabilizer,
    try_check_equivalence_stabilizer,
)
from .equivalence import METHODS, check_all_methods, check_equivalence
from .tn_check import (
    check_equivalence_random_stimuli,
    check_equivalence_tn,
    hilbert_schmidt_overlap,
)
from .unitary_check import check_equivalence_unitary
from .zx_check import check_equivalence_zx

__all__ = [
    "METHODS",
    "check_all_methods",
    "check_equivalence",
    "check_equivalence_dd",
    "check_equivalence_random_stimuli",
    "check_equivalence_stabilizer",
    "check_equivalence_tn",
    "check_equivalence_unitary",
    "check_equivalence_zx",
    "hilbert_schmidt_overlap",
    "peak_nodes_alternating",
    "try_check_equivalence_stabilizer",
]
