"""Unified equivalence-checking facade over all four data structures."""

from __future__ import annotations

from typing import Dict, Optional

from ..circuits.circuit import QuantumCircuit
from .dd_check import check_equivalence_dd
from .stab_check import try_check_equivalence_stabilizer
from .tn_check import check_equivalence_random_stimuli, check_equivalence_tn
from .unitary_check import check_equivalence_unitary
from .zx_check import check_equivalence_zx

METHODS = ("arrays", "dd", "zx", "tn", "tn_stimuli", "stab")


def check_equivalence(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    method: str = "dd",
    **kwargs,
) -> Optional[bool]:
    """Check two circuits for equivalence up to global phase.

    ``method`` selects the backing data structure:

    - ``"arrays"``  — dense unitary comparison (exact, exponential memory),
    - ``"dd"``      — alternating decision-diagram scheme (exact),
    - ``"zx"``      — ZX rewriting of ``A . B^dagger`` (sound, may return
      ``None`` for "inconclusive"),
    - ``"tn"``      — tensor-network trace overlap (exact),
    - ``"tn_stimuli"`` — random-stimuli amplitude comparison (probabilistic),
    - ``"stab"``    — stabilizer tableau (exact and polynomial, Clifford
      circuits only; ``None`` on non-Clifford inputs).
    """
    if method == "arrays":
        return check_equivalence_unitary(circuit_a, circuit_b, **kwargs)
    if method == "dd":
        return check_equivalence_dd(circuit_a, circuit_b, **kwargs)
    if method == "zx":
        return check_equivalence_zx(circuit_a, circuit_b, **kwargs)
    if method == "tn":
        return check_equivalence_tn(circuit_a, circuit_b, **kwargs)
    if method == "tn_stimuli":
        return check_equivalence_random_stimuli(circuit_a, circuit_b, **kwargs)
    if method == "stab":
        return try_check_equivalence_stabilizer(circuit_a, circuit_b, **kwargs)
    raise ValueError(f"unknown method '{method}'; choose from {METHODS}")


def check_all_methods(
    circuit_a: QuantumCircuit, circuit_b: QuantumCircuit
) -> Dict[str, Optional[bool]]:
    """Run every checker; useful for cross-validation and benchmarking."""
    return {method: check_equivalence(circuit_a, circuit_b, method) for method in METHODS}
