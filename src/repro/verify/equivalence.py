"""Unified equivalence-checking facade over all four data structures.

Mirrors the simulation facade's registry treatment: checkers are looked
up from a method table, keyword arguments are filtered to each checker's
signature, and ``method="auto"`` routes by circuit structure (stabilizer
tableau for Clifford pairs; ZX rewriting first with a decision-diagram
fallback otherwise, following the miter-based flow of the paper's
verification section).
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Optional, Union

from ..circuits.circuit import QuantumCircuit
from ..core.analyzer import analyze
from ..resources import ResourceBudget, ResourceExhausted, default_budget
from .dd_check import check_equivalence_dd
from .stab_check import try_check_equivalence_stabilizer
from .tn_check import check_equivalence_random_stimuli, check_equivalence_tn
from .unitary_check import check_equivalence_unitary
from .zx_check import check_equivalence_zx

METHODS = ("arrays", "dd", "zx", "tn", "tn_stimuli", "stab")

AUTO = "auto"

_CHECKERS: Dict[str, Callable] = {
    "arrays": check_equivalence_unitary,
    "dd": check_equivalence_dd,
    "zx": check_equivalence_zx,
    "tn": check_equivalence_tn,
    "tn_stimuli": check_equivalence_random_stimuli,
    "stab": try_check_equivalence_stabilizer,
}


def _call_checker(
    checker: Callable,
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    kwargs: Dict,
) -> Optional[bool]:
    """Invoke a checker, passing only the kwargs its signature accepts."""
    params = inspect.signature(checker).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        accepted = kwargs
    else:
        accepted = {k: v for k, v in kwargs.items() if k in params}
    return checker(circuit_a, circuit_b, **accepted)


def check_equivalence(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    method: str = "dd",
    **kwargs,
) -> Optional[bool]:
    """Check two circuits for equivalence up to global phase.

    ``method`` selects the backing data structure:

    - ``"arrays"``  — dense unitary comparison (exact, exponential memory),
    - ``"dd"``      — alternating decision-diagram scheme (exact),
    - ``"zx"``      — ZX rewriting of ``A . B^dagger`` (sound, may return
      ``None`` for "inconclusive"),
    - ``"tn"``      — tensor-network trace overlap (exact),
    - ``"tn_stimuli"`` — random-stimuli amplitude comparison (probabilistic),
    - ``"stab"``    — stabilizer tableau (exact and polynomial, Clifford
      circuits only; ``None`` on non-Clifford inputs),
    - ``"auto"``    — structure-driven routing: ``stab`` when both
      circuits are Clifford; otherwise ``zx`` first (cheap when it
      concludes) with the exact ``dd`` scheme as fallback on an
      inconclusive ``None``.

    Keyword arguments are forwarded to the selected checker, filtered to
    the parameters it accepts (e.g. ``strategy=`` only reaches ``dd``).
    ``budget`` (a :class:`~repro.resources.ResourceBudget`, dict, or spec
    string; defaulted from the ``REPRO_BUDGET`` environment variable)
    caps the resources of budget-aware checkers — a tripped cap raises
    :class:`~repro.resources.ResourceExhausted`, except under
    ``method="auto"`` where the exhausted checker is treated as
    inconclusive and the next one is tried.
    """
    if "budget" in kwargs:
        kwargs["budget"] = ResourceBudget.coerce(kwargs["budget"])
    else:
        env_budget = default_budget()
        if env_budget is not None:
            kwargs["budget"] = env_budget
    if method == AUTO:
        return _check_equivalence_auto(circuit_a, circuit_b, kwargs)
    try:
        checker = _CHECKERS[method]
    except KeyError:
        raise ValueError(
            f"unknown method '{method}'; choose from {METHODS + (AUTO,)}"
        ) from None
    return _call_checker(checker, circuit_a, circuit_b, kwargs)


def _check_equivalence_auto(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    kwargs: Dict,
) -> Optional[bool]:
    clean_a = circuit_a.without_measurements()
    clean_b = circuit_b.without_measurements()
    if analyze(clean_a).is_clifford and analyze(clean_b).is_clifford:
        return _call_checker(
            try_check_equivalence_stabilizer, circuit_a, circuit_b, kwargs
        )
    zx_verdict = _call_checker(
        check_equivalence_zx, circuit_a, circuit_b, kwargs
    )
    if zx_verdict is not None:
        return zx_verdict
    try:
        return _call_checker(check_equivalence_dd, circuit_a, circuit_b, kwargs)
    except ResourceExhausted:
        # The exact fallback ran out of budget: the sound-but-incomplete
        # ZX verdict above was already None, so the answer is unknown.
        return None


def check_all_methods(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    **kwargs,
) -> Dict[str, Union[bool, None, str]]:
    """Run every checker; useful for cross-validation and benchmarking.

    Keyword arguments are forwarded to each checker (filtered to the
    parameters it accepts).  A checker that raises on an unsupported
    circuit — e.g. a memory error from the dense comparison, or a
    decomposition failure — no longer aborts the sweep: its entry records
    the failure as ``"error: <ExceptionType>: <message>"`` while the
    remaining methods still report ``True``/``False``/``None``.

    With a resource ``budget`` (explicit or via ``REPRO_BUDGET``), a
    checker that trips its cap — e.g. the dense unitary comparison when
    ``2**(2n)`` entries exceed the memory budget — records exactly
    ``"skipped: budget"`` instead of aborting or OOM-ing.
    """
    results: Dict[str, Union[bool, None, str]] = {}
    for method in METHODS:
        try:
            results[method] = check_equivalence(
                circuit_a, circuit_b, method=method, **kwargs
            )
        except ResourceExhausted:
            results[method] = "skipped: budget"
        except Exception as exc:  # noqa: BLE001 - sweep must survive any checker
            results[method] = f"error: {type(exc).__name__}: {exc}"
    return results
