"""ZX-calculus equivalence checking (paper Sec. V, refs. [38]-[41]).

Composes one circuit's diagram with the other's adjoint and reduces; if the
rewriting engine shrinks ``G . G'^dagger`` to the identity diagram (bare
wires from inputs to outputs), the circuits are equivalent up to global
phase.  The method is sound but incomplete: a non-identity residual is
reported as "unknown" rather than "inequivalent".
"""

from __future__ import annotations

from typing import Optional

from ..circuits.circuit import QuantumCircuit
from ..zx.circuit_conv import circuit_to_zx
from ..zx.diagram import EdgeType, ZXDiagram
from ..zx.simplify import full_reduce


def _is_identity_diagram(diagram: ZXDiagram) -> bool:
    """True iff every input is wired straight to the matching output."""
    if diagram.spiders():
        return False
    if len(diagram.inputs) != len(diagram.outputs):
        return False
    for i, o in zip(diagram.inputs, diagram.outputs):
        edge = diagram.edge_type(i, o)
        if edge != EdgeType.SIMPLE:
            return False
    return True


def check_equivalence_zx(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    max_rounds: int = 1000,
) -> Optional[bool]:
    """Reduce ``A . B^dagger`` with the ZX engine.

    Returns ``True`` when the composite reduces to the identity diagram,
    ``None`` when the reduction gets stuck on a non-identity residual
    (inconclusive — the calculus fragment implemented here is incomplete)
    **or** when ``max_rounds`` truncated the rewrite before a fixpoint:
    a half-rewritten diagram proves nothing, so a non-converged reduction
    is never trusted, even if it happens to look like the identity.
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        return False
    da = circuit_to_zx(circuit_a.without_measurements())
    db = circuit_to_zx(circuit_b.without_measurements())
    composite = da.compose(db.adjoint())
    reduction = full_reduce(composite, max_rounds=max_rounds)
    if not reduction.converged:
        return None
    # After reduction identity wires may still have an even number of
    # chained phase-free spiders (boundary protection); clean them up.
    _strip_boundary_identities(composite)
    if _is_identity_diagram(composite):
        return True
    return None


def _strip_boundary_identities(diagram: ZXDiagram) -> None:
    """Remove leftover phase-free degree-2 spiders on boundary wires."""
    from ..zx.rules import check_identity, remove_identity

    changed = True
    while changed:
        changed = False
        for v in list(diagram.vertices()):
            if v in diagram.types and not diagram.is_boundary(v):
                if check_identity(diagram, v):
                    remove_identity(diagram, v)
                    changed = True
