"""Stabilizer-tableau equivalence checking for Clifford circuits.

``A`` equals ``B`` up to global phase iff ``U = B^dagger A`` conjugates
every generator ``X_q``/``Z_q`` to itself with a + sign — i.e. running the
composite circuit on a fresh tableau leaves the tableau exactly in its
initial configuration.  Polynomial time, exact, but only defined on the
Clifford fragment.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..stab.tableau import NotCliffordError, StabilizerSimulator, StabilizerTableau


def check_equivalence_stabilizer(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
) -> bool:
    """Exact equivalence (up to global phase) of two Clifford circuits.

    Raises :class:`NotCliffordError` when either circuit leaves the
    Clifford gate set.
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        return False
    composite = circuit_a.without_measurements().copy()
    composite.compose(circuit_b.without_measurements().inverse())
    simulator = StabilizerSimulator()
    tableau, _ = simulator.run(composite)
    fresh = StabilizerTableau(circuit_a.num_qubits)
    return (
        np.array_equal(tableau.x, fresh.x)
        and np.array_equal(tableau.z, fresh.z)
        and np.array_equal(tableau.r, fresh.r)
    )


def try_check_equivalence_stabilizer(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
) -> Optional[bool]:
    """Like :func:`check_equivalence_stabilizer`, but returns ``None``
    (inconclusive) instead of raising on non-Clifford inputs."""
    try:
        return check_equivalence_stabilizer(circuit_a, circuit_b)
    except NotCliffordError:
        return None
