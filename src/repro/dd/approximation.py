"""Approximate decision diagrams (paper ref. [12]).

"As accurate as needed, as efficient as possible": prune branches whose
contribution to the state's norm is negligible, shrinking the diagram while
tracking the fidelity cost.  The pruning rule is local: at every node, a
child branch is cut when its share of the node's squared norm falls below
``threshold``; the result is renormalized to unit norm.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .node import TERMINAL, DDNode, Edge
from .package import ZERO_EDGE, DDPackage


def approximate(
    package: DDPackage, edge: Edge, threshold: float
) -> Tuple[Edge, float]:
    """Prune low-contribution branches of a vector DD.

    Returns ``(approximated_edge, fidelity)`` where fidelity is
    ``|<original|approx>|^2`` with both states normalized.  ``threshold`` is
    the per-node relative squared-norm cut-off: 0 keeps everything, larger
    values prune more aggressively.
    """
    if edge.weight == 0:
        return edge, 1.0
    norms = package.node_norms(edge)
    memo: Dict[int, Edge] = {}

    def rebuild(node: DDNode) -> Edge:
        if node.is_terminal:
            return Edge(TERMINAL, 1.0 + 0j)
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        contributions = []
        total = 0.0
        for child in node.edges:
            value = (
                abs(child.weight) ** 2 * norms[id(child.node)]
                if child.weight != 0
                else 0.0
            )
            contributions.append(value)
            total += value
        children = []
        for child, contribution in zip(node.edges, contributions):
            if child.weight == 0 or (total > 0 and contribution / total < threshold):
                children.append(ZERO_EDGE)
            else:
                sub = rebuild(child.node)
                children.append(
                    package.make_edge(sub.node, sub.weight * child.weight)
                )
        result = package.make_node(node.var, tuple(children))
        memo[id(node)] = result
        return result

    rebuilt = rebuild(edge.node)
    if rebuilt.weight == 0:
        return ZERO_EDGE, 0.0
    approx = package.make_edge(rebuilt.node, rebuilt.weight * edge.weight)
    # Renormalize and measure fidelity against the (normalized) original.
    approx_norm = package.norm(approx)
    original_norm = package.norm(edge)
    if approx_norm == 0:
        return ZERO_EDGE, 0.0
    normalized = package.make_edge(approx.node, approx.weight / approx_norm)
    overlap = package.inner_product(edge, normalized)
    fidelity = abs(overlap / original_norm) ** 2
    return normalized, float(fidelity)
