"""Approximate decision diagrams (paper ref. [12]).

"As accurate as needed, as efficient as possible": prune branches whose
contribution to the state's norm is negligible, shrinking the diagram while
tracking the fidelity cost.  The pruning rule is local: at every node, a
child branch is cut when its share of the node's squared norm falls below
``threshold``; the result is renormalized to unit norm.

:func:`approximate_to_fidelity` inverts the knob: instead of a threshold
it takes a fidelity floor and binary-searches for the most aggressive
pruning that still certifies it — the primitive behind the approximate
simulation tier's ``accuracy=`` target.  :func:`copy_edge` migrates a
state into a fresh package, which is how the DD simulator reclaims the
unique-table space of pruned-away nodes (the table itself never shrinks).
"""

from __future__ import annotations

from typing import Dict, Tuple

from .node import DDNode, Edge
from .package import ONE_EDGE, ZERO_EDGE, DDPackage

_SEARCH_RESOLUTION = 1e-12
"""Bisection stops once the threshold bracket is this narrow."""


def approximate(
    package: DDPackage, edge: Edge, threshold: float
) -> Tuple[Edge, float]:
    """Prune low-contribution branches of a vector DD.

    Returns ``(approximated_edge, fidelity)`` where fidelity is
    ``|<original|approx>|^2`` with both states normalized.  ``threshold`` is
    the per-node relative squared-norm cut-off: 0 keeps everything, larger
    values prune more aggressively.

    Every rebuilt node goes through :meth:`DDPackage.make_node` /
    :meth:`~DDPackage.make_edge` (terminal edges reuse the interned
    ``ONE_EDGE``), so the result is canonical in ``package``'s unique
    table: approximating the same state at the same threshold twice
    yields the identical diagram and grows no new table entries.
    """
    if edge.weight == 0:
        return edge, 1.0
    norms = package.node_norms(edge)
    memo: Dict[int, Edge] = {}

    def rebuild(node: DDNode) -> Edge:
        if node.is_terminal:
            return ONE_EDGE
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        contributions = []
        total = 0.0
        for child in node.edges:
            value = (
                abs(child.weight) ** 2 * norms[id(child.node)]
                if child.weight != 0
                else 0.0
            )
            contributions.append(value)
            total += value
        children = []
        for child, contribution in zip(node.edges, contributions):
            if child.weight == 0 or (total > 0 and contribution / total < threshold):
                children.append(ZERO_EDGE)
            else:
                sub = rebuild(child.node)
                children.append(
                    package.make_edge(sub.node, sub.weight * child.weight)
                )
        result = package.make_node(node.var, tuple(children))
        memo[id(node)] = result
        return result

    rebuilt = rebuild(edge.node)
    if rebuilt.weight == 0:
        return ZERO_EDGE, 0.0
    approx = package.make_edge(rebuilt.node, rebuilt.weight * edge.weight)
    # Renormalize and measure fidelity against the (normalized) original.
    approx_norm = package.norm(approx)
    original_norm = package.norm(edge)
    if approx_norm == 0:
        return ZERO_EDGE, 0.0
    normalized = package.make_edge(approx.node, approx.weight / approx_norm)
    overlap = package.inner_product(edge, normalized)
    fidelity = abs(overlap / original_norm) ** 2
    return normalized, float(fidelity)


def approximate_to_fidelity(
    package: DDPackage,
    edge: Edge,
    min_fidelity: float,
    max_iters: int = 20,
) -> Tuple[Edge, float]:
    """The most aggressive pruning that still certifies ``min_fidelity``.

    Raising the threshold prunes a (pointwise) superset of branches, so
    the surviving amplitude mass — and with it the fidelity — is
    monotone non-increasing in the threshold.  That makes the largest
    admissible threshold a bisection target: start from the maximal
    sensible cut-off (0.5 — any child holding at least half its node's
    mass always survives) and home in on the boundary.

    Returns ``(edge, fidelity)`` with ``fidelity >= min_fidelity``
    guaranteed; when even the finest probed pruning overshoots the
    budget, the original edge is returned untouched with fidelity 1.0.
    The monotone search also makes the result monotone in the *target*:
    loosening ``min_fidelity`` never yields a higher-fidelity estimate.
    """
    if min_fidelity >= 1.0 or edge.weight == 0:
        return edge, 1.0
    hi = 0.5
    candidate, fidelity = approximate(package, edge, hi)
    if fidelity >= min_fidelity:
        return candidate, fidelity
    lo = 0.0
    best = (edge, 1.0)
    for _ in range(max_iters):
        if hi - lo < _SEARCH_RESOLUTION:
            break
        mid = (lo + hi) / 2.0
        candidate, fidelity = approximate(package, edge, mid)
        if fidelity >= min_fidelity:
            best = (candidate, fidelity)
            lo = mid
        else:
            hi = mid
    return best


def copy_edge(edge: Edge, target: DDPackage) -> Edge:
    """Rebuild a vector-DD edge inside ``target``'s unique table.

    Structure and weights are preserved exactly (weights re-intern
    through the target's complex table).  The main client is the
    approximate tier's garbage collection: after pruning, the live
    diagram is migrated into a fresh package so the unique table — which
    only ever grows — releases the dead nodes and the node budget
    measures the *live* state again.
    """
    memo: Dict[int, Edge] = {}

    def rec(node: DDNode) -> Edge:
        if node.is_terminal:
            return ONE_EDGE
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        children = []
        for child in node.edges:
            if child.weight == 0:
                children.append(ZERO_EDGE)
            else:
                sub = rec(child.node)
                children.append(
                    target.make_edge(sub.node, sub.weight * child.weight)
                )
        result = target.make_node(node.var, tuple(children))
        memo[id(node)] = result
        return result

    rebuilt = rec(edge.node)
    return target.make_edge(rebuilt.node, rebuilt.weight * edge.weight)
