"""Decision-diagram based quantum circuit simulation (paper Sec. III).

The simulator keeps the state as a vector DD and applies each gate by
building its (linear-size) matrix DD and multiplying.  States with heavy
structure (GHZ, basis states, stabilizer-like states) stay polynomially
small where the array backend needs ``2**n`` amplitudes.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..circuits.circuit import Operation, QuantumCircuit
from ..circuits.gates import Gate
from ..obs.progress import GATE_EVENT_INTERVAL, ProgressReporter
from ..resources import ResourceBudget
from .approximation import approximate_to_fidelity, copy_edge
from .package import DDPackage
from .vector import VectorDD

_DEADLINE_CHECK_INTERVAL = 8
"""Operations between wall-clock budget checks in the gate loop."""

_APPROX_INTERVAL = 16
"""Unitary operations between pruning passes when an accuracy target is set.

Pruning too often wastes the fidelity budget on states that have not yet
grown; too rarely lets the diagram blow past the node budget before the
first rescue.  Sixteen gates per pass keeps the amortized search cost
below one mv-multiply."""

_PROJECT_ZERO = Gate("project0", 1, None)  # placeholders, matrices built inline
_PROJECTORS = {
    0: np.array([[1, 0], [0, 0]], dtype=np.complex128),
    1: np.array([[0, 0], [0, 1]], dtype=np.complex128),
}


class DDSimulationResult:
    def __init__(self, state: VectorDD, classical_bits: Dict[int, int]) -> None:
        self.state = state
        self.classical_bits = classical_bits

    def sample_counts(self, shots: int, seed: int = 0) -> Dict[str, int]:
        return self.state.sample_counts(shots, seed=seed)

    def to_statevector(self) -> np.ndarray:
        return self.state.to_statevector()


class DDSimulator:
    """Simulate circuits on vector decision diagrams.

    ``budget`` adds a wall-clock deadline to the gate loop; the node and
    memory caps are enforced structurally by handing the package a
    ``max_nodes`` limit (see :meth:`DDPackage.make_node`).

    ``accuracy`` switches the run into the approximate tier: every
    ``_APPROX_INTERVAL`` gates (and once at the end) the state is pruned
    as aggressively as the remaining fidelity budget allows
    (:func:`~repro.dd.approximation.approximate_to_fidelity`), and the
    surviving diagram is migrated into a fresh package so the unique
    table releases the dead nodes.

    The certificate composes per-prune fidelities through the
    Fubini-Study angle: a prune with step fidelity ``f`` moves the state
    by ``arccos(sqrt(f))``, subsequent unitaries are isometries, so the
    final overlap obeys ``|<exact|approx>|^2 >= cos(sum of angles)^2``.
    (The naive product of step fidelities is *not* a bound — angles add,
    and ``cos(a+b)^2 < cos(a)^2 cos(b)^2`` whenever both are nonzero.)
    The total angle budget ``arccos(sqrt(accuracy))`` is rationed across
    planned prunes, so ``fidelity_estimate >= accuracy`` always holds.
    """

    def __init__(
        self,
        package: Optional[DDPackage] = None,
        seed: int = 0,
        budget: Optional[ResourceBudget] = None,
        progress: Optional[callable] = None,
        accuracy: Optional[float] = None,
    ) -> None:
        if accuracy is not None and not 0.0 < accuracy <= 1.0:
            raise ValueError(f"accuracy must be in (0, 1], got {accuracy}")
        self.package = package or DDPackage()
        self._rng = np.random.default_rng(seed)
        self.peak_nodes = 0
        self.budget = budget
        self.progress = progress
        self.accuracy = accuracy
        self.fidelity_estimate = 1.0
        self.approx_prunes = 0
        self._approx_angle = 0.0

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[VectorDD] = None,
        track_peak: bool = False,
    ) -> DDSimulationResult:
        n = circuit.num_qubits
        pkg = self.package
        deadline = self.budget.deadline() if self.budget is not None else None
        if initial_state is None:
            state = VectorDD.zero_state(n, pkg)
        else:
            if initial_state.package is not pkg:
                raise ValueError("initial state belongs to a different package")
            state = initial_state
        self.peak_nodes = state.num_nodes() if track_peak else 0
        self.fidelity_estimate = 1.0
        self.approx_prunes = 0
        self._approx_angle = 0.0
        approx_target = (
            self.accuracy
            if self.accuracy is not None and self.accuracy < 1.0
            else None
        )
        planned_prunes = 1
        if approx_target is not None:
            executable = sum(
                1
                for op in circuit.operations
                if not op.is_barrier and not op.is_measurement
            )
            planned_prunes = executable // _APPROX_INTERVAL + 1
        applied = 0
        classical: Dict[int, int] = {}
        reporter = ProgressReporter.maybe(
            self.progress,
            "gates",
            total=len(circuit.operations),
            backend="dd",
            every=GATE_EVENT_INTERVAL,
        )
        for position, op in enumerate(circuit.operations):
            if deadline is not None and position % _DEADLINE_CHECK_INTERVAL == 0:
                deadline.check(backend="dd", context="gate loop")
            if reporter is not None:
                reporter.step()
            if op.is_barrier:
                continue
            if op.is_measurement:
                outcome, state = self._measure(state, op.targets[0])
                if op.clbits:
                    classical[op.clbits[0]] = outcome
                continue
            if op.condition is not None:
                clbit, value = op.condition
                if classical.get(clbit, 0) != value:
                    continue
            state = self.apply_operation(state, op)
            applied += 1
            if track_peak:
                self.peak_nodes = max(self.peak_nodes, state.num_nodes())
            if approx_target is not None and applied % _APPROX_INTERVAL == 0:
                state = self._prune(state, approx_target, planned_prunes)
        if approx_target is not None:
            state = self._prune(state, approx_target, planned_prunes, final=True)
        if reporter is not None:
            reporter.close()
        return DDSimulationResult(state, classical)

    def _prune(
        self,
        state: VectorDD,
        target: float,
        planned_prunes: int,
        final: bool = False,
    ) -> VectorDD:
        """One budgeted pruning pass plus unique-table garbage collection.

        The remaining Fubini-Study angle budget is spread evenly over
        the prunes still to come, so early passes stay gentle while a
        slack run lets the final pass spend whatever is left.  The
        invariant ``fidelity_estimate >= target`` holds after every pass
        because :func:`approximate_to_fidelity` never undershoots its
        floor, and angle accounting survives the intervening unitaries
        (isometries in the Fubini-Study metric).
        """
        remaining = 1 if final else max(1, planned_prunes - self.approx_prunes)
        total_angle = math.acos(math.sqrt(min(1.0, target)))
        angle_left = max(0.0, total_angle - self._approx_angle)
        step_floor = min(1.0, math.cos(angle_left / remaining) ** 2)
        edge, fidelity = approximate_to_fidelity(
            self.package, state.edge, step_floor
        )
        self._approx_angle += math.acos(
            math.sqrt(min(1.0, max(0.0, fidelity)))
        )
        self.fidelity_estimate = (
            math.cos(self._approx_angle) ** 2
            if self._approx_angle < math.pi / 2
            else 0.0
        )
        self.approx_prunes += 1
        # Unique tables only grow; migrating the pruned state into a
        # fresh package is what actually frees memory and lets the node
        # budget measure the live diagram again.
        fresh = DDPackage(
            tolerance=self.package.ctable.tolerance,
            max_cache_entries=self.package.max_cache_entries,
            max_nodes=self.package.max_nodes,
        )
        edge = copy_edge(edge, fresh)
        self.package = fresh
        return VectorDD(fresh, edge, state.num_qubits)

    def apply_operation(self, state: VectorDD, op: Operation) -> VectorDD:
        gate = self.package.gate_edge(op, state.num_qubits)
        edge = self.package.mv_multiply(gate, state.edge)
        return VectorDD(self.package, edge, state.num_qubits)

    def statevector(self, circuit: QuantumCircuit) -> np.ndarray:
        return self.run(circuit.without_measurements()).to_statevector()

    def simulate_state(self, circuit: QuantumCircuit) -> VectorDD:
        return self.run(circuit.without_measurements()).state

    def _measure(self, state: VectorDD, qubit: int) -> Tuple[int, VectorDD]:
        pkg = self.package
        prob_one = pkg.measure_probability(state.edge, qubit, 1)
        total = pkg.norm(state.edge) ** 2
        prob_one = min(max(prob_one / total, 0.0), 1.0) if total > 0 else 0.0
        outcome = 1 if self._rng.random() < prob_one else 0
        projector = Operation(
            Gate(f"project{outcome}", 1, _PROJECTORS[outcome]), [qubit]
        )
        edge = pkg.mv_multiply(pkg.gate_edge(projector, state.num_qubits), state.edge)
        norm = pkg.norm(edge)
        if norm > 0:
            edge = pkg.make_edge(edge.node, edge.weight / norm)
        return outcome, VectorDD(pkg, edge, state.num_qubits)
