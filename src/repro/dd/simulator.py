"""Decision-diagram based quantum circuit simulation (paper Sec. III).

The simulator keeps the state as a vector DD and applies each gate by
building its (linear-size) matrix DD and multiplying.  States with heavy
structure (GHZ, basis states, stabilizer-like states) stay polynomially
small where the array backend needs ``2**n`` amplitudes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..circuits.circuit import Operation, QuantumCircuit
from ..circuits.gates import Gate
from ..obs.progress import GATE_EVENT_INTERVAL, ProgressReporter
from ..resources import ResourceBudget
from .package import DDPackage
from .vector import VectorDD

_DEADLINE_CHECK_INTERVAL = 8
"""Operations between wall-clock budget checks in the gate loop."""

_PROJECT_ZERO = Gate("project0", 1, None)  # placeholders, matrices built inline
_PROJECTORS = {
    0: np.array([[1, 0], [0, 0]], dtype=np.complex128),
    1: np.array([[0, 0], [0, 1]], dtype=np.complex128),
}


class DDSimulationResult:
    def __init__(self, state: VectorDD, classical_bits: Dict[int, int]) -> None:
        self.state = state
        self.classical_bits = classical_bits

    def sample_counts(self, shots: int, seed: int = 0) -> Dict[str, int]:
        return self.state.sample_counts(shots, seed=seed)

    def to_statevector(self) -> np.ndarray:
        return self.state.to_statevector()


class DDSimulator:
    """Simulate circuits on vector decision diagrams.

    ``budget`` adds a wall-clock deadline to the gate loop; the node and
    memory caps are enforced structurally by handing the package a
    ``max_nodes`` limit (see :meth:`DDPackage.make_node`).
    """

    def __init__(
        self,
        package: Optional[DDPackage] = None,
        seed: int = 0,
        budget: Optional[ResourceBudget] = None,
        progress: Optional[callable] = None,
    ) -> None:
        self.package = package or DDPackage()
        self._rng = np.random.default_rng(seed)
        self.peak_nodes = 0
        self.budget = budget
        self.progress = progress

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[VectorDD] = None,
        track_peak: bool = False,
    ) -> DDSimulationResult:
        n = circuit.num_qubits
        pkg = self.package
        deadline = self.budget.deadline() if self.budget is not None else None
        if initial_state is None:
            state = VectorDD.zero_state(n, pkg)
        else:
            if initial_state.package is not pkg:
                raise ValueError("initial state belongs to a different package")
            state = initial_state
        self.peak_nodes = state.num_nodes() if track_peak else 0
        classical: Dict[int, int] = {}
        reporter = ProgressReporter.maybe(
            self.progress,
            "gates",
            total=len(circuit.operations),
            backend="dd",
            every=GATE_EVENT_INTERVAL,
        )
        for position, op in enumerate(circuit.operations):
            if deadline is not None and position % _DEADLINE_CHECK_INTERVAL == 0:
                deadline.check(backend="dd", context="gate loop")
            if reporter is not None:
                reporter.step()
            if op.is_barrier:
                continue
            if op.is_measurement:
                outcome, state = self._measure(state, op.targets[0])
                if op.clbits:
                    classical[op.clbits[0]] = outcome
                continue
            if op.condition is not None:
                clbit, value = op.condition
                if classical.get(clbit, 0) != value:
                    continue
            state = self.apply_operation(state, op)
            if track_peak:
                self.peak_nodes = max(self.peak_nodes, state.num_nodes())
        if reporter is not None:
            reporter.close()
        return DDSimulationResult(state, classical)

    def apply_operation(self, state: VectorDD, op: Operation) -> VectorDD:
        gate = self.package.gate_edge(op, state.num_qubits)
        edge = self.package.mv_multiply(gate, state.edge)
        return VectorDD(self.package, edge, state.num_qubits)

    def statevector(self, circuit: QuantumCircuit) -> np.ndarray:
        return self.run(circuit.without_measurements()).to_statevector()

    def simulate_state(self, circuit: QuantumCircuit) -> VectorDD:
        return self.run(circuit.without_measurements()).state

    def _measure(self, state: VectorDD, qubit: int) -> Tuple[int, VectorDD]:
        pkg = self.package
        prob_one = pkg.measure_probability(state.edge, qubit, 1)
        total = pkg.norm(state.edge) ** 2
        prob_one = min(max(prob_one / total, 0.0), 1.0) if total > 0 else 0.0
        outcome = 1 if self._rng.random() < prob_one else 0
        projector = Operation(
            Gate(f"project{outcome}", 1, _PROJECTORS[outcome]), [qubit]
        )
        edge = pkg.mv_multiply(pkg.gate_edge(projector, state.num_qubits), state.edge)
        norm = pkg.norm(edge)
        if norm > 0:
            edge = pkg.make_edge(edge.node, edge.weight / norm)
        return outcome, VectorDD(pkg, edge, state.num_qubits)
