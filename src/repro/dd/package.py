"""QMDD-style decision diagram package (paper Sec. III).

The package owns the unique table (structural sharing), the complex table
(canonical edge weights), and the operation caches.  Vectors are decomposed
recursively into halves, matrices into quadrants; equivalent sub-structures
are represented once, and common amplitude factors live on edge weights.

Main entry points:

- :meth:`DDPackage.zero_state_edge` / :meth:`from_statevector` — vector DDs,
- :meth:`DDPackage.identity_edge` / :meth:`gate_edge` — matrix DDs,
- :meth:`DDPackage.mv_multiply`, :meth:`mm_multiply`, :meth:`add` — algebra,
- :meth:`DDPackage.to_statevector`, :meth:`to_matrix`, :meth:`amplitude` —
  extraction.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Operation
from ..resources import NodeBudgetExceeded
from .complex_table import ONE, ZERO, ComplexTable
from .node import TERMINAL, DDNode, Edge

ZERO_EDGE = Edge(TERMINAL, ZERO)
ONE_EDGE = Edge(TERMINAL, ONE)

BYTES_PER_NODE = 128
"""Rough per-node footprint (4 edge pointers + 4 complex weights + header).

Used both for the uniform ``memory_bytes`` metadata estimate and to turn
a :class:`~repro.resources.ResourceBudget` memory cap into a node cap.
"""


class DDPackage:
    """Shared tables and algorithms for vector and matrix decision diagrams.

    Operation caches (``add``, ``mv``, ``mm``, ``ct``, ``ip``) are bounded
    at ``max_cache_entries`` each; a cache that overflows is cleared
    wholesale (the cheap policy used by real DD packages — entries are
    re-derivable).  Hit/miss/clear counters are exposed via
    :meth:`cache_stats` so benchmarks can report cache effectiveness.

    ``max_nodes`` caps the unique table: interning a node that would grow
    the table past the cap raises
    :class:`~repro.resources.NodeBudgetExceeded`.  This is the DD
    backend's resource-budget checkpoint — diagram blow-up is detected at
    the node that crosses the line, not after memory is gone.
    """

    def __init__(
        self,
        tolerance: float = 1e-10,
        max_cache_entries: int = 1 << 18,
        max_nodes: Optional[int] = None,
    ) -> None:
        if max_cache_entries < 1:
            raise ValueError("max_cache_entries must be positive")
        if max_nodes is not None and max_nodes < 1:
            raise ValueError("max_nodes must be positive")
        self.ctable = ComplexTable(tolerance)
        self.max_cache_entries = max_cache_entries
        self.max_nodes = max_nodes
        self._unique: Dict[Tuple, DDNode] = {}
        self.unique_hits = 0
        self.unique_misses = 0
        self._add_cache: Dict[Tuple, Edge] = {}
        self._mv_cache: Dict[Tuple, Edge] = {}
        self._mm_cache: Dict[Tuple, Edge] = {}
        self._ct_cache: Dict[int, Edge] = {}
        self._ip_cache: Dict[Tuple[int, int], complex] = {}
        self._cache_counters: Dict[str, Dict[str, int]] = {
            name: {"hits": 0, "misses": 0, "clears": 0}
            for name in ("add", "mv", "mm", "ct", "ip")
        }

    # -- statistics ----------------------------------------------------------

    @property
    def unique_table_size(self) -> int:
        return len(self._unique)

    def unique_table_stats(self) -> Dict[str, int]:
        """Unique-table size plus interning hit/miss counters."""
        return {
            "entries": len(self._unique),
            "hits": self.unique_hits,
            "misses": self.unique_misses,
        }

    def _cache_put(self, name: str, cache: Dict, key, value) -> None:
        """Insert under the bound; clear wholesale on overflow."""
        if len(cache) >= self.max_cache_entries:
            cache.clear()
            self._cache_counters[name]["clears"] += 1
        cache[key] = value

    def _count(self, name: str, hit: bool) -> None:
        self._cache_counters[name]["hits" if hit else "misses"] += 1

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-cache entry counts and hit/miss/clear counters."""
        sizes = {
            "add": len(self._add_cache),
            "mv": len(self._mv_cache),
            "mm": len(self._mm_cache),
            "ct": len(self._ct_cache),
            "ip": len(self._ip_cache),
        }
        return {
            name: {"entries": sizes[name], **counters}
            for name, counters in self._cache_counters.items()
        }

    def clear_caches(self) -> None:
        """Drop operation caches (the unique table is kept)."""
        self._add_cache.clear()
        self._mv_cache.clear()
        self._mm_cache.clear()
        self._ct_cache.clear()
        self._ip_cache.clear()

    def reset(self) -> None:
        """Drop every table; invalidates all previously created diagrams."""
        self._unique.clear()
        self.unique_hits = 0
        self.unique_misses = 0
        self.clear_caches()
        for counters in self._cache_counters.values():
            counters["hits"] = counters["misses"] = counters["clears"] = 0
        self.ctable = ComplexTable(self.ctable.tolerance)

    # -- node construction ----------------------------------------------------

    def make_edge(self, node: DDNode, weight: complex) -> Edge:
        weight = self.ctable.lookup(complex(weight))
        if weight == 0:
            return ZERO_EDGE
        return Edge(node, weight)

    def make_node(self, var: int, edges: Tuple[Edge, ...]) -> Edge:
        """Normalize, intern, and return an edge to the node.

        Normalization divides all edge weights by the (leftmost) weight of
        largest magnitude, which moves onto the returned edge; this makes the
        representation canonical so equal sub-vectors share one node.
        """
        max_mag = 0.0
        for e in edges:
            mag = abs(e.weight)
            if mag > max_mag:
                max_mag = mag
        if max_mag == 0.0:
            return ZERO_EDGE
        tol = self.ctable.tolerance
        pivot_weight = None
        for e in edges:
            if abs(e.weight) >= max_mag - tol:
                pivot_weight = e.weight
                break
        assert pivot_weight is not None
        normalized: List[Edge] = []
        for e in edges:
            if e.weight == 0:
                normalized.append(ZERO_EDGE)
            elif e.weight is pivot_weight:
                normalized.append(Edge(e.node, ONE))
            else:
                normalized.append(self.make_edge(e.node, e.weight / pivot_weight))
        key = (var, tuple((id(e.node), e.weight) for e in normalized))
        node = self._unique.get(key)
        if node is not None:
            self.unique_hits += 1
        else:
            self.unique_misses += 1
            if (
                self.max_nodes is not None
                and len(self._unique) >= self.max_nodes
            ):
                raise NodeBudgetExceeded(
                    f"decision diagram grew past the node budget of "
                    f"{self.max_nodes} unique nodes",
                    backend="dd",
                    limit=self.max_nodes,
                    observed=len(self._unique) + 1,
                )
            node = DDNode(var, tuple(normalized))
            self._unique[key] = node
        return self.make_edge(node, pivot_weight)

    # -- vector constructors ---------------------------------------------------

    def zero_state_edge(self, num_qubits: int) -> Edge:
        """Vector DD of |0...0> — a single chain of nodes."""
        return self.basis_state_edge(num_qubits, 0)

    def basis_state_edge(self, num_qubits: int, index: int) -> Edge:
        edge = ONE_EDGE
        for level in range(num_qubits):
            if (index >> level) & 1:
                edge = self.make_node(level, (ZERO_EDGE, edge))
            else:
                edge = self.make_node(level, (edge, ZERO_EDGE))
        return edge

    def from_statevector(self, state: np.ndarray) -> Edge:
        state = np.asarray(state, dtype=np.complex128)
        num_qubits = int(len(state)).bit_length() - 1
        if 1 << num_qubits != len(state):
            raise ValueError("statevector length is not a power of two")

        def rec(offset: int, level: int) -> Edge:
            if level < 0:
                return self.make_edge(TERMINAL, complex(state[offset]))
            half = 1 << level
            low = rec(offset, level - 1)
            high = rec(offset + half, level - 1)
            return self.make_node(level, (low, high))

        return rec(0, num_qubits - 1)

    # -- matrix constructors ----------------------------------------------------

    def identity_edge(self, num_qubits: int) -> Edge:
        edge = ONE_EDGE
        for level in range(num_qubits):
            edge = self.make_node(level, (edge, ZERO_EDGE, ZERO_EDGE, edge))
        return edge

    def from_matrix(self, matrix: np.ndarray) -> Edge:
        matrix = np.asarray(matrix, dtype=np.complex128)
        dim = matrix.shape[0]
        num_qubits = int(dim).bit_length() - 1
        if matrix.shape != (dim, dim) or 1 << num_qubits != dim:
            raise ValueError("matrix must be square with power-of-two dimension")

        def rec(row: int, col: int, level: int) -> Edge:
            if level < 0:
                return self.make_edge(TERMINAL, complex(matrix[row, col]))
            half = 1 << level
            quadrants = tuple(
                rec(row + r * half, col + c * half, level - 1)
                for r in (0, 1)
                for c in (0, 1)
            )
            return self.make_node(level, quadrants)

        return rec(0, 0, num_qubits - 1)

    def gate_edge(self, op: Operation, num_qubits: int) -> Edge:
        """Matrix DD of an operation embedded into ``num_qubits`` qubits.

        Handles arbitrary targets and positive controls; size is linear in
        the qubit count (times the local gate dimension).
        """
        matrix = op.gate.matrix
        if op.gate.num_qubits == 0:
            # Global phase (possibly controlled).
            return self._phase_edge(complex(matrix[0, 0]), op.controls, num_qubits)
        targets = list(op.targets)
        target_pos = {q: i for i, q in enumerate(targets)}
        controls = frozenset(op.controls)
        none_bits: Tuple = tuple(None for _ in targets)
        memo: Dict[Tuple, Edge] = {}

        def rec(level: int, identity_mode: bool, tbits: Tuple) -> Edge:
            if level < 0:
                if identity_mode:
                    return ONE_EDGE
                row = 0
                col = 0
                for i, rc in enumerate(tbits):
                    row |= rc[0] << i
                    col |= rc[1] << i
                return self.make_edge(TERMINAL, complex(matrix[row, col]))
            key = (level, True, None) if identity_mode else (level, False, tbits)
            cached = memo.get(key)
            if cached is not None:
                return cached
            if identity_mode:
                sub = rec(level - 1, True, none_bits)
                result = self.make_node(level, (sub, ZERO_EDGE, ZERO_EDGE, sub))
            elif level in target_pos:
                idx = target_pos[level]
                quadrants = []
                for r in (0, 1):
                    for c in (0, 1):
                        assigned = tuple(
                            (r, c) if i == idx else rc for i, rc in enumerate(tbits)
                        )
                        quadrants.append(rec(level - 1, False, assigned))
                result = self.make_node(level, tuple(quadrants))
            elif level in controls:
                # control = 0 branch is the identity — unless an already
                # assigned target sits off-diagonal, which kills the branch.
                diagonal_ok = all(rc is None or rc[0] == rc[1] for rc in tbits)
                if diagonal_ok:
                    inactive = rec(level - 1, True, none_bits)
                else:
                    inactive = ZERO_EDGE
                active = rec(level - 1, False, tbits)
                result = self.make_node(level, (inactive, ZERO_EDGE, ZERO_EDGE, active))
            else:
                sub = rec(level - 1, identity_mode, tbits)
                result = self.make_node(level, (sub, ZERO_EDGE, ZERO_EDGE, sub))
            memo[key] = result
            return result

        return rec(num_qubits - 1, False, none_bits)

    def _phase_edge(
        self, phase: complex, controls: Sequence[int], num_qubits: int
    ) -> Edge:
        controls_set = frozenset(controls)
        edge = self.make_edge(TERMINAL, phase)
        identity = ONE_EDGE
        for level in range(num_qubits):
            if level in controls_set:
                edge = self.make_node(level, (identity, ZERO_EDGE, ZERO_EDGE, edge))
            else:
                edge = self.make_node(level, (edge, ZERO_EDGE, ZERO_EDGE, edge))
            identity = self.make_node(
                level, (identity, ZERO_EDGE, ZERO_EDGE, identity)
            )
        return edge

    # -- algebra ---------------------------------------------------------------

    def add(self, e1: Edge, e2: Edge) -> Edge:
        """Pointwise sum of two vector or matrix DDs."""
        if e1.weight == 0:
            return e2
        if e2.weight == 0:
            return e1
        if e1.node is e2.node:
            return self.make_edge(e1.node, e1.weight + e2.weight)
        if e1.node.is_terminal and e2.node.is_terminal:
            return self.make_edge(TERMINAL, e1.weight + e2.weight)
        ratio = self.ctable.lookup(e2.weight / e1.weight)
        key = (id(e1.node), id(e2.node), ratio)
        cached = self._add_cache.get(key)
        self._count("add", cached is not None)
        if cached is None:
            n1, n2 = e1.node, e2.node
            arity = len(n1.edges)
            children = []
            for i in range(arity):
                c1 = n1.edges[i]
                c2 = n2.edges[i]
                scaled = Edge(c2.node, c2.weight * ratio) if c2.weight != 0 else ZERO_EDGE
                children.append(self.add(c1, scaled))
            cached = self.make_node(n1.var, tuple(children))
            self._cache_put("add", self._add_cache, key, cached)
        return self.make_edge(cached.node, cached.weight * e1.weight)

    def mv_multiply(self, m: Edge, v: Edge) -> Edge:
        """Matrix-vector product: apply a matrix DD to a vector DD."""
        if m.weight == 0 or v.weight == 0:
            return ZERO_EDGE
        scale = m.weight * v.weight
        if m.node.is_terminal and v.node.is_terminal:
            return self.make_edge(TERMINAL, scale)
        key = (id(m.node), id(v.node))
        cached = self._mv_cache.get(key)
        self._count("mv", cached is not None)
        if cached is None:
            rows = []
            for r in (0, 1):
                acc = ZERO_EDGE
                for c in (0, 1):
                    me = m.node.edges[2 * r + c]
                    ve = v.node.edges[c]
                    if me.weight == 0 or ve.weight == 0:
                        continue
                    acc = self.add(acc, self.mv_multiply(me, ve))
                rows.append(acc)
            cached = self.make_node(m.node.var, tuple(rows))
            self._cache_put("mv", self._mv_cache, key, cached)
        return self.make_edge(cached.node, cached.weight * scale)

    def mm_multiply(self, m1: Edge, m2: Edge) -> Edge:
        """Matrix-matrix product of two matrix DDs."""
        if m1.weight == 0 or m2.weight == 0:
            return ZERO_EDGE
        scale = m1.weight * m2.weight
        if m1.node.is_terminal and m2.node.is_terminal:
            return self.make_edge(TERMINAL, scale)
        key = (id(m1.node), id(m2.node))
        cached = self._mm_cache.get(key)
        self._count("mm", cached is not None)
        if cached is None:
            quadrants = []
            for r in (0, 1):
                for c in (0, 1):
                    acc = ZERO_EDGE
                    for k in (0, 1):
                        a = m1.node.edges[2 * r + k]
                        b = m2.node.edges[2 * k + c]
                        if a.weight == 0 or b.weight == 0:
                            continue
                        acc = self.add(acc, self.mm_multiply(a, b))
                    quadrants.append(acc)
            cached = self.make_node(m1.node.var, tuple(quadrants))
            self._cache_put("mm", self._mm_cache, key, cached)
        return self.make_edge(cached.node, cached.weight * scale)

    def conjugate_transpose(self, m: Edge) -> Edge:
        """Adjoint of a matrix DD."""
        if m.weight == 0:
            return ZERO_EDGE
        if m.node.is_terminal:
            return self.make_edge(TERMINAL, m.weight.conjugate())
        cached = self._ct_cache.get(id(m.node))
        self._count("ct", cached is not None)
        if cached is None:
            n = m.node
            # transpose swaps the off-diagonal quadrants
            order = (0, 2, 1, 3)
            children = tuple(self.conjugate_transpose(n.edges[i]) for i in order)
            cached = self.make_node(n.var, children)
            self._cache_put("ct", self._ct_cache, id(m.node), cached)
        return self.make_edge(cached.node, cached.weight * m.weight.conjugate())

    def expectation(self, matrix: Edge, vector: Edge) -> complex:
        """``<v| M |v>`` computed entirely inside the DD algebra."""
        applied = self.mv_multiply(matrix, vector)
        return self.inner_product(vector, applied)

    def inner_product(self, a: Edge, b: Edge) -> complex:
        """Hermitian inner product <a|b> of two vector DDs."""
        if a.weight == 0 or b.weight == 0:
            return 0j
        scale = a.weight.conjugate() * b.weight
        if a.node.is_terminal and b.node.is_terminal:
            return scale
        key = (id(a.node), id(b.node))
        cached = self._ip_cache.get(key)
        self._count("ip", cached is not None)
        if cached is None:
            cached = 0j
            for c in (0, 1):
                cached += self.inner_product(a.node.edges[c], b.node.edges[c])
            self._cache_put("ip", self._ip_cache, key, cached)
        return cached * scale

    # -- extraction --------------------------------------------------------------

    def to_statevector(self, edge: Edge, num_qubits: Optional[int] = None) -> np.ndarray:
        if num_qubits is None:
            num_qubits = edge.node.var + 1
        memo: Dict[int, np.ndarray] = {}

        def rec(node: DDNode) -> np.ndarray:
            if node.is_terminal:
                return np.array([1.0 + 0j])
            cached = memo.get(id(node))
            if cached is not None:
                return cached
            parts = []
            size = 1 << node.var
            for e in node.edges:
                if e.weight == 0:
                    parts.append(np.zeros(size, dtype=np.complex128))
                else:
                    parts.append(e.weight * rec(e.node))
            result = np.concatenate(parts)
            memo[id(node)] = result
            return result

        if edge.weight == 0:
            return np.zeros(1 << num_qubits, dtype=np.complex128)
        vec = edge.weight * rec(edge.node)
        if len(vec) != 1 << num_qubits:
            # zero-stub root or smaller diagram: pad (only for malformed input)
            raise ValueError("edge does not represent a full statevector")
        return vec

    def to_matrix(self, edge: Edge, num_qubits: Optional[int] = None) -> np.ndarray:
        if num_qubits is None:
            num_qubits = edge.node.var + 1
        dim = 1 << num_qubits

        def rec(e: Edge, level: int) -> np.ndarray:
            size = 1 << (level + 1)
            if e.weight == 0:
                return np.zeros((size, size), dtype=np.complex128)
            if level < 0:
                return np.array([[e.weight]])
            node = e.node
            half = size // 2
            out = np.empty((size, size), dtype=np.complex128)
            for r in (0, 1):
                for c in (0, 1):
                    block = rec(node.edges[2 * r + c], level - 1)
                    out[r * half : (r + 1) * half, c * half : (c + 1) * half] = block
            return e.weight * out

        return rec(edge, num_qubits - 1)

    def amplitude(self, edge: Edge, index: int) -> complex:
        """Single amplitude: product of edge weights along one path."""
        weight = edge.weight
        node = edge.node
        while not node.is_terminal and weight != 0:
            bit = (index >> node.var) & 1
            child = node.edges[bit]
            weight *= child.weight
            node = child.node
        return complex(weight)

    def matrix_entry(self, edge: Edge, row: int, col: int) -> complex:
        weight = edge.weight
        node = edge.node
        while not node.is_terminal and weight != 0:
            r = (row >> node.var) & 1
            c = (col >> node.var) & 1
            child = node.edges[2 * r + c]
            weight *= child.weight
            node = child.node
        return complex(weight)

    # -- measurement -------------------------------------------------------------

    def node_norms(self, edge: Edge) -> Dict[int, float]:
        """Map ``id(node) -> sum of |amplitude|^2`` of the node's sub-vector."""
        norms: Dict[int, float] = {id(TERMINAL): 1.0}

        def rec(node: DDNode) -> float:
            key = id(node)
            if key in norms:
                return norms[key]
            total = 0.0
            for e in node.edges:
                if e.weight != 0:
                    total += abs(e.weight) ** 2 * rec(e.node)
            norms[key] = total
            return total

        rec(edge.node)
        return norms

    def norm(self, edge: Edge) -> float:
        """Euclidean norm of the represented vector."""
        if edge.weight == 0:
            return 0.0
        norms = self.node_norms(edge)
        return math.sqrt(abs(edge.weight) ** 2 * norms[id(edge.node)])

    def sample(
        self, edge: Edge, num_qubits: int, shots: int, seed: int = 0
    ) -> Dict[str, int]:
        """Sample measurement outcomes directly from the DD (no 2^n vector)."""
        rng = np.random.default_rng(seed)
        norms = self.node_norms(edge)
        counts: Dict[str, int] = {}
        for _ in range(shots):
            bits = ["0"] * num_qubits
            node = edge.node
            while not node.is_terminal:
                e0, e1 = node.edges
                p0 = abs(e0.weight) ** 2 * norms[id(e0.node)] if e0.weight != 0 else 0.0
                p1 = abs(e1.weight) ** 2 * norms[id(e1.node)] if e1.weight != 0 else 0.0
                total = p0 + p1
                choose_one = rng.random() < p1 / total
                if choose_one:
                    bits[num_qubits - 1 - node.var] = "1"
                    node = e1.node
                else:
                    node = e0.node
            key = "".join(bits)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def measure_probability(self, edge: Edge, qubit: int, outcome: int) -> float:
        """Probability of measuring ``qubit`` as ``outcome`` (edge normalized)."""
        norms = self.node_norms(edge)
        memo: Dict[int, float] = {}

        def rec(node: DDNode) -> float:
            if node.is_terminal:
                # A terminal reached above the qubit level means a zero stub
                # was taken; contribution handled by weight-zero pruning.
                return 1.0 if outcome == 0 else 0.0
            key = id(node)
            if key in memo:
                return memo[key]
            if node.var == qubit:
                e = node.edges[outcome]
                result = abs(e.weight) ** 2 * norms[id(e.node)] if e.weight != 0 else 0.0
            elif node.var < qubit:
                result = norms[key] if outcome == 0 else 0.0
            else:
                result = 0.0
                for e in node.edges:
                    if e.weight != 0:
                        result += abs(e.weight) ** 2 * rec(e.node)
            memo[key] = result
            return result

        return abs(edge.weight) ** 2 * rec(edge.node)

    # -- structure -----------------------------------------------------------------

    def count_nodes(self, edge: Edge) -> int:
        """Number of distinct non-terminal nodes reachable from ``edge``."""
        seen = set()
        stack = [edge.node]
        while stack:
            node = stack.pop()
            if node.is_terminal or id(node) in seen:
                continue
            seen.add(id(node))
            for e in node.edges:
                if e.weight != 0:
                    stack.append(e.node)
        return len(seen)

    def is_identity(self, edge: Edge, num_qubits: int, up_to_phase: bool = True) -> bool:
        """Whether a matrix DD is the identity (optionally up to global phase)."""
        identity = self.identity_edge(num_qubits)
        if edge.node is not identity.node:
            return False
        if up_to_phase:
            return abs(abs(edge.weight) - 1.0) <= 1e-8
        return abs(edge.weight - 1.0) <= 1e-8
