"""Node and edge primitives for quantum decision diagrams.

A vector node has two successors (the |0> and |1> sub-vectors of its qubit,
paper Sec. III); a matrix node has four (the quadrants, index ``2*row+col``).
Nodes are interned by the :class:`~repro.dd.package.DDPackage`; equality of
interned nodes is object identity.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple


class DDNode:
    """An interned decision-diagram node.

    ``var`` is the qubit level (0 = least significant); the shared terminal
    node has ``var == -1`` and no edges.
    """

    __slots__ = ("var", "edges")

    def __init__(self, var: int, edges: Tuple["Edge", ...]) -> None:
        self.var = var
        self.edges = edges

    @property
    def is_terminal(self) -> bool:
        return self.var < 0

    def __repr__(self) -> str:
        if self.is_terminal:
            return "DDNode(terminal)"
        return f"DDNode(q{self.var}, {len(self.edges)} edges)"


class Edge(NamedTuple):
    """A weighted pointer to a node."""

    node: DDNode
    weight: complex

    @property
    def is_zero(self) -> bool:
        return self.weight == 0

    def __repr__(self) -> str:
        return f"Edge({self.node!r}, w={self.weight:.6g})"


TERMINAL = DDNode(-1, ())
