"""High-level matrix decision diagram wrapper."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..circuits.circuit import Operation, QuantumCircuit
from .node import Edge
from .package import DDPackage
from .vector import VectorDD


class MatrixDD:
    """A unitary (or general linear map) represented as a decision diagram."""

    def __init__(self, package: DDPackage, edge: Edge, num_qubits: int) -> None:
        self.package = package
        self.edge = edge
        self.num_qubits = num_qubits

    @classmethod
    def identity(cls, num_qubits: int, package: Optional[DDPackage] = None) -> "MatrixDD":
        package = package or DDPackage()
        return cls(package, package.identity_edge(num_qubits), num_qubits)

    @classmethod
    def from_operation(
        cls, op: Operation, num_qubits: int, package: Optional[DDPackage] = None
    ) -> "MatrixDD":
        package = package or DDPackage()
        return cls(package, package.gate_edge(op, num_qubits), num_qubits)

    @classmethod
    def from_circuit(
        cls, circuit: QuantumCircuit, package: Optional[DDPackage] = None
    ) -> "MatrixDD":
        """Build the circuit's full functionality as one matrix DD."""
        package = package or DDPackage()
        n = circuit.num_qubits
        edge = package.identity_edge(n)
        for op in circuit.operations:
            if op.is_barrier:
                continue
            if op.is_measurement:
                raise ValueError("circuit with measurements has no matrix DD")
            gate = package.gate_edge(op, n)
            edge = package.mm_multiply(gate, edge)
        return cls(package, edge, n)

    @classmethod
    def from_matrix(
        cls, matrix: np.ndarray, package: Optional[DDPackage] = None
    ) -> "MatrixDD":
        package = package or DDPackage()
        num_qubits = int(matrix.shape[0]).bit_length() - 1
        return cls(package, package.from_matrix(matrix), num_qubits)

    def to_matrix(self) -> np.ndarray:
        return self.package.to_matrix(self.edge, self.num_qubits)

    def entry(self, row: int, col: int) -> complex:
        return self.package.matrix_entry(self.edge, row, col)

    def apply(self, vector: VectorDD) -> VectorDD:
        if vector.package is not self.package:
            raise ValueError("operands belong to different DD packages")
        edge = self.package.mv_multiply(self.edge, vector.edge)
        return VectorDD(self.package, edge, self.num_qubits)

    def compose(self, other: "MatrixDD") -> "MatrixDD":
        """``self @ other`` (apply ``other`` first)."""
        if other.package is not self.package:
            raise ValueError("operands belong to different DD packages")
        edge = self.package.mm_multiply(self.edge, other.edge)
        return MatrixDD(self.package, edge, self.num_qubits)

    def adjoint(self) -> "MatrixDD":
        return MatrixDD(
            self.package,
            self.package.conjugate_transpose(self.edge),
            self.num_qubits,
        )

    def is_identity(self, up_to_phase: bool = True) -> bool:
        return self.package.is_identity(self.edge, self.num_qubits, up_to_phase)

    def num_nodes(self) -> int:
        return self.package.count_nodes(self.edge)

    def __repr__(self) -> str:
        return f"MatrixDD({self.num_qubits} qubits, {self.num_nodes()} nodes)"
