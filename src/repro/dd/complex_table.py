"""Canonical storage of complex edge weights.

Decision diagrams only stay canonical (and their operation caches only hit)
if numerically-equal weights are represented by *one* object.  Following the
"how to efficiently handle complex values" approach of Zulehner/Hillmich/
Wille (paper reference [29]), weights are interned in a table with a small
numerical tolerance: any value within ``tolerance`` of a stored value maps to
that stored representative.
"""

from __future__ import annotations

from typing import Dict, Tuple

ZERO = complex(0.0, 0.0)
ONE = complex(1.0, 0.0)


class ComplexTable:
    """Interning table for complex numbers with absolute tolerance."""

    def __init__(self, tolerance: float = 1e-10) -> None:
        self.tolerance = tolerance
        self._buckets: Dict[Tuple[int, int], complex] = {}
        # Seed the exact values every diagram relies on.
        self._buckets[self._key(ZERO)] = ZERO
        self._buckets[self._key(ONE)] = ONE

    def _key(self, value: complex) -> Tuple[int, int]:
        scale = 1.0 / self.tolerance
        return (int(round(value.real * scale)), int(round(value.imag * scale)))

    def lookup(self, value: complex) -> complex:
        """Return the canonical representative of ``value``.

        Checks the value's bucket and the eight neighbouring buckets so that
        values straddling a bucket boundary still unify.
        """
        if value == ZERO:
            return ZERO
        if value == ONE:
            return ONE
        center = self._key(value)
        tol = self.tolerance
        for di in (0, -1, 1):
            for dj in (0, -1, 1):
                candidate = self._buckets.get((center[0] + di, center[1] + dj))
                if candidate is not None and (
                    abs(candidate.real - value.real) <= tol
                    and abs(candidate.imag - value.imag) <= tol
                ):
                    return candidate
        self._buckets[center] = value
        return value

    def approx_zero(self, value: complex) -> bool:
        return abs(value.real) <= self.tolerance and abs(value.imag) <= self.tolerance

    def approx_one(self, value: complex) -> bool:
        return (
            abs(value.real - 1.0) <= self.tolerance
            and abs(value.imag) <= self.tolerance
        )

    def __len__(self) -> int:
        return len(self._buckets)
