"""High-level vector decision diagram wrapper."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .node import Edge
from .package import DDPackage


class VectorDD:
    """A quantum state represented as a decision diagram.

    Thin wrapper pairing an edge with its owning package; exposes the
    state-level queries (amplitudes, sampling, fidelity) without the caller
    having to thread the package around.
    """

    def __init__(self, package: DDPackage, edge: Edge, num_qubits: int) -> None:
        self.package = package
        self.edge = edge
        self.num_qubits = num_qubits

    @classmethod
    def zero_state(cls, num_qubits: int, package: Optional[DDPackage] = None) -> "VectorDD":
        package = package or DDPackage()
        return cls(package, package.zero_state_edge(num_qubits), num_qubits)

    @classmethod
    def basis_state(
        cls, num_qubits: int, index: int, package: Optional[DDPackage] = None
    ) -> "VectorDD":
        package = package or DDPackage()
        return cls(package, package.basis_state_edge(num_qubits, index), num_qubits)

    @classmethod
    def from_statevector(
        cls, state: np.ndarray, package: Optional[DDPackage] = None
    ) -> "VectorDD":
        package = package or DDPackage()
        num_qubits = int(len(state)).bit_length() - 1
        return cls(package, package.from_statevector(state), num_qubits)

    def to_statevector(self) -> np.ndarray:
        return self.package.to_statevector(self.edge, self.num_qubits)

    def amplitude(self, index: int) -> complex:
        return self.package.amplitude(self.edge, index)

    def probability(self, index: int) -> float:
        return abs(self.amplitude(index)) ** 2

    def norm(self) -> float:
        return self.package.norm(self.edge)

    def inner_product(self, other: "VectorDD") -> complex:
        if other.package is not self.package:
            raise ValueError("vectors belong to different DD packages")
        return self.package.inner_product(self.edge, other.edge)

    def fidelity(self, other: "VectorDD") -> float:
        return abs(self.inner_product(other)) ** 2

    def expectation_pauli(self, pauli: str) -> float:
        """Expectation value of a Pauli string (leftmost char = top qubit)."""
        from ..circuits import gates as g
        from ..circuits.circuit import Operation

        if len(pauli) != self.num_qubits:
            raise ValueError("Pauli string length mismatch")
        gates = {"X": g.X, "Y": g.Y, "Z": g.Z}
        applied = self.edge
        for position, ch in enumerate(pauli):
            if ch == "I":
                continue
            if ch not in gates:
                raise ValueError(f"invalid Pauli character {ch!r}")
            qubit = self.num_qubits - 1 - position
            op = Operation(gates[ch], [qubit])
            applied = self.package.mv_multiply(
                self.package.gate_edge(op, self.num_qubits), applied
            )
        return float(self.package.inner_product(self.edge, applied).real)

    def approximate(self, threshold: float) -> "VectorDD":
        """Prune low-contribution branches (paper ref. [12]); renormalizes."""
        from .approximation import approximate

        edge, _fidelity = approximate(self.package, self.edge, threshold)
        return VectorDD(self.package, edge, self.num_qubits)

    def sample_counts(self, shots: int, seed: int = 0) -> Dict[str, int]:
        return self.package.sample(self.edge, self.num_qubits, shots, seed=seed)

    def num_nodes(self) -> int:
        return self.package.count_nodes(self.edge)

    def __repr__(self) -> str:
        return f"VectorDD({self.num_qubits} qubits, {self.num_nodes()} nodes)"
