"""Decision diagrams for quantum states and operations: paper Sec. III."""

from .approximation import approximate
from .complex_table import ComplexTable
from .export import to_ascii, to_dot
from .matrix import MatrixDD
from .node import TERMINAL, DDNode, Edge
from .noise_sim import NoisyDDResult, NoisyDDSimulator
from .package import ONE_EDGE, ZERO_EDGE, DDPackage
from .simulator import DDSimulationResult, DDSimulator
from .vector import VectorDD

__all__ = [
    "ComplexTable",
    "DDNode",
    "DDPackage",
    "DDSimulationResult",
    "DDSimulator",
    "Edge",
    "MatrixDD",
    "NoisyDDResult",
    "NoisyDDSimulator",
    "ONE_EDGE",
    "approximate",
    "TERMINAL",
    "VectorDD",
    "ZERO_EDGE",
    "to_ascii",
    "to_dot",
]
