"""Noise-aware decision-diagram simulation (paper ref. [13]).

Grurl/Fuss/Wille-style stochastic noise on decision diagrams: each
trajectory keeps the state as a vector DD and, after every noisy operation,
samples one Kraus branch with the Born probability computed *on the
diagram* (no dense vectors anywhere).  Structured states stay compact even
under noise, which is the point of doing this on DDs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..arrays.noise import KrausChannel, NoiseModel
from ..circuits.circuit import Operation, QuantumCircuit
from ..circuits.gates import Gate
from .package import DDPackage
from .simulator import DDSimulator
from .vector import VectorDD


class NoisyDDResult:
    """Averaged outcome distribution over DD trajectories."""

    def __init__(
        self,
        probabilities: np.ndarray,
        num_trajectories: int,
        mean_nodes: float,
        peak_nodes: int,
    ) -> None:
        self.probs = probabilities
        self.num_trajectories = num_trajectories
        self.mean_nodes = mean_nodes
        self.peak_nodes = peak_nodes

    def probabilities(self) -> np.ndarray:
        return self.probs

    def sample_counts(self, shots: int, seed: int = 0) -> Dict[str, int]:
        num_qubits = int(len(self.probs)).bit_length() - 1
        rng = np.random.default_rng(seed)
        normalized = self.probs / self.probs.sum()
        outcomes = rng.choice(len(self.probs), size=shots, p=normalized)
        counts: Dict[str, int] = {}
        for outcome in outcomes:
            key = format(int(outcome), f"0{num_qubits}b")
            counts[key] = counts.get(key, 0) + 1
        return counts


class NoisyDDSimulator:
    """Monte-Carlo Kraus unraveling with decision-diagram states."""

    def __init__(self, noise_model: Optional[NoiseModel], seed: int = 0) -> None:
        self.noise_model = noise_model
        self._rng = np.random.default_rng(seed)

    def run(
        self, circuit: QuantumCircuit, trajectories: int = 100
    ) -> NoisyDDResult:
        n = circuit.num_qubits
        total = np.zeros(2**n)
        node_counts: List[int] = []
        peak = 0
        for _ in range(trajectories):
            state = self._single_trajectory(circuit)
            total += np.abs(state.to_statevector()) ** 2
            nodes = state.num_nodes()
            node_counts.append(nodes)
            peak = max(peak, nodes)
        return NoisyDDResult(
            total / trajectories,
            trajectories,
            float(np.mean(node_counts)),
            peak,
        )

    def run_sampling(
        self, circuit: QuantumCircuit, shots: int
    ) -> Dict[str, int]:
        """One trajectory per shot, sampled directly from the diagram.

        Never builds a dense 2^n array, so this scales with the diagram
        size rather than the qubit count.
        """
        counts: Dict[str, int] = {}
        n = circuit.num_qubits
        for _ in range(shots):
            state = self._single_trajectory(circuit)
            sample = state.sample_counts(1, seed=int(self._rng.integers(2**31)))
            for key, value in sample.items():
                counts[key] = counts.get(key, 0) + value
        return counts

    def _single_trajectory(self, circuit: QuantumCircuit) -> VectorDD:
        package = DDPackage()
        simulator = DDSimulator(package, seed=int(self._rng.integers(2**31)))
        n = circuit.num_qubits
        state = VectorDD.zero_state(n, package)
        for op in circuit.operations:
            if op.is_barrier:
                continue
            if op.is_measurement:
                _, state = simulator._measure(state, op.targets[0])
                continue
            state = simulator.apply_operation(state, op)
            state = self._apply_noise(package, state, op)
        return state

    def _apply_noise(
        self, package: DDPackage, state: VectorDD, op: Operation
    ) -> VectorDD:
        if self.noise_model is None:
            return state
        channel = self.noise_model.channel_for(
            op.name_with_controls(), op.num_qubits
        )
        if channel is None:
            return state
        if channel.num_qubits == 1:
            for q in op.qubits:
                state = self._sample_kraus(package, state, channel, [q])
        elif channel.num_qubits == len(op.qubits):
            state = self._sample_kraus(package, state, channel, list(op.qubits))
        else:
            raise ValueError(
                f"channel '{channel.name}' arity does not match the operation"
            )
        return state

    def _sample_kraus(
        self,
        package: DDPackage,
        state: VectorDD,
        channel: KrausChannel,
        targets: List[int],
    ) -> VectorDD:
        """Born-weighted Kraus branch selection, with DD-native norms."""
        weights = []
        candidates = []
        for index, kraus in enumerate(channel.operators):
            gate = Gate(f"kraus_{channel.name}_{index}", len(targets), kraus)
            op = Operation(gate, targets)
            edge = package.mv_multiply(
                package.gate_edge(op, state.num_qubits), state.edge
            )
            weight = package.norm(edge) ** 2
            weights.append(weight)
            candidates.append(edge)
        total = sum(weights)
        pick = self._rng.random() * total
        cumulative = 0.0
        chosen = len(weights) - 1
        for index, weight in enumerate(weights):
            cumulative += weight
            if pick <= cumulative:
                chosen = index
                break
        edge = candidates[chosen]
        norm = np.sqrt(max(weights[chosen], 1e-300))
        edge = package.make_edge(edge.node, edge.weight / norm)
        return VectorDD(package, edge, state.num_qubits)
