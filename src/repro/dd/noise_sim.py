"""Noise-aware decision-diagram simulation (paper ref. [13]).

Grurl/Fuss/Wille-style stochastic noise on decision diagrams: each
trajectory keeps the state as a vector DD and, after every noisy operation,
samples one Kraus branch with the Born probability computed *on the
diagram* (no dense vectors anywhere).  Structured states stay compact even
under noise, which is the point of doing this on DDs.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..arrays.noise import KrausChannel, NoiseModel
from ..circuits.circuit import Operation, QuantumCircuit
from ..circuits.gates import Gate
from ..arrays.autotune import get_tuner
from ..obs import metrics as obs_metrics
from ..obs.progress import ProgressReporter
from ..parallel import (
    RunStats,
    chunk_sizes,
    configured_jobs,
    parallel_map,
    spawn_seeds,
)
from .package import DDPackage
from .simulator import DDSimulator
from .vector import VectorDD


class NoisyDDResult:
    """Averaged outcome distribution over DD trajectories.

    ``metadata`` (chunked-engine runs only) audits the execution:
    executor, chunk layout, shared-memory transfer volume, and consumed
    autotuner decisions.
    """

    def __init__(
        self,
        probabilities: np.ndarray,
        num_trajectories: int,
        mean_nodes: float,
        peak_nodes: int,
        metadata: Optional[Dict] = None,
    ) -> None:
        self.probs = probabilities
        self.num_trajectories = num_trajectories
        self.mean_nodes = mean_nodes
        self.peak_nodes = peak_nodes
        self.metadata = metadata if metadata is not None else {}

    def probabilities(self) -> np.ndarray:
        return self.probs

    def sample_counts(self, shots: int, seed: int = 0) -> Dict[str, int]:
        num_qubits = int(len(self.probs)).bit_length() - 1
        rng = np.random.default_rng(seed)
        normalized = self.probs / self.probs.sum()
        outcomes = rng.choice(len(self.probs), size=shots, p=normalized)
        counts: Dict[str, int] = {}
        for outcome in outcomes:
            key = format(int(outcome), f"0{num_qubits}b")
            counts[key] = counts.get(key, 0) + 1
        return counts


def _chunk_progress(
    specs: List[Tuple],
    progress: Optional[callable],
    kind: str,
    backend: str,
) -> Optional[Callable[[int, object], None]]:
    """``on_result`` hook advancing a reporter by cumulative chunk sizes.

    Chunk specs carry their trajectory/shot count at position 2; events
    fire in the parent as each chunk's result is consumed, so the user's
    callback never crosses the pickle boundary.
    """
    if progress is None:
        return None
    sizes = [spec[2] for spec in specs]
    reporter = ProgressReporter(
        progress, kind, total=sum(sizes), backend=backend
    )
    done_after = list(itertools.accumulate(sizes))

    def _on_result(index: int, _partial: object) -> None:
        reporter.advance_to(done_after[index], chunk=index)

    return _on_result


def _dd_chunk_simulator(
    noise_model: Optional[NoiseModel], seed_seq: np.random.SeedSequence
) -> "NoisyDDSimulator":
    simulator = NoisyDDSimulator(noise_model)
    simulator._rng = np.random.default_rng(seed_seq)
    return simulator


def _dd_trajectory_chunk_worker(
    spec: Tuple[
        QuantumCircuit, Optional[NoiseModel], int, np.random.SeedSequence
    ],
) -> Tuple[np.ndarray, List[int], int]:
    """Module-level (picklable) chunk task for :meth:`NoisyDDSimulator.run`.

    Returns the chunk's partial probability sum, the per-trajectory node
    counts (in trajectory order), and the chunk's peak node count.
    """
    circuit, noise_model, count, seed_seq = spec
    simulator = _dd_chunk_simulator(noise_model, seed_seq)
    total = np.zeros(2**circuit.num_qubits)
    node_counts: List[int] = []
    peak = 0
    for _ in range(count):
        state = simulator._single_trajectory(circuit)
        total += np.abs(state.to_statevector()) ** 2
        nodes = state.num_nodes()
        node_counts.append(nodes)
        peak = max(peak, nodes)
    return total, node_counts, peak


def _dd_sampling_chunk_worker(
    spec: Tuple[
        QuantumCircuit, Optional[NoiseModel], int, np.random.SeedSequence
    ],
) -> Dict[str, int]:
    """Chunk task for :meth:`NoisyDDSimulator.run_sampling`: partial counts."""
    circuit, noise_model, count, seed_seq = spec
    simulator = _dd_chunk_simulator(noise_model, seed_seq)
    counts: Dict[str, int] = {}
    for _ in range(count):
        state = simulator._single_trajectory(circuit)
        sample = state.sample_counts(
            1, seed=int(simulator._rng.integers(2**31))
        )
        for key, value in sample.items():
            counts[key] = counts.get(key, 0) + value
    return counts


class NoisyDDSimulator:
    """Monte-Carlo Kraus unraveling with decision-diagram states.

    Like :class:`repro.arrays.trajectories.TrajectorySimulator`, the
    trajectory loop has a legacy serial path (``n_jobs=None`` with no
    ``REPRO_JOBS`` set: one RNG stream, one trajectory at a time) and a
    chunked path: trajectories split by :func:`repro.parallel.chunk_sizes`
    with one ``SeedSequence`` child per chunk, executed inline for
    ``n_jobs=1`` or on a spawn-safe process pool otherwise.  Chunk
    boundaries, seeds, and merge order (probabilities summed and node
    counts concatenated in chunk order; sampling counts merged by key)
    never depend on the worker count, so seeded chunked results are
    bitwise identical at any ``n_jobs``.
    """

    def __init__(self, noise_model: Optional[NoiseModel], seed: int = 0) -> None:
        self.noise_model = noise_model
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def _chunk_specs(
        self,
        circuit: QuantumCircuit,
        total: int,
        chunk_size: Optional[int],
    ) -> List[Tuple]:
        sizes = chunk_sizes(total, chunk_size=chunk_size)
        seeds = spawn_seeds(self.seed, len(sizes))
        return [
            (circuit, self.noise_model, count, seed_seq)
            for count, seed_seq in zip(sizes, seeds)
        ]

    def run(
        self,
        circuit: QuantumCircuit,
        trajectories: int = 100,
        n_jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
        progress: Optional[callable] = None,
        executor: Optional[str] = None,
        shm: Optional[bool] = None,
    ) -> NoisyDDResult:
        jobs = configured_jobs(n_jobs)
        if jobs is None and chunk_size is None:
            return self._run_serial(circuit, trajectories, progress)
        tuner = get_tuner()
        if chunk_size is None:
            chunk_size = tuner.chunk_size_for(
                "dd_trajectories", circuit.num_qubits
            )
        # No executor tuning here: DD trajectory work is pure-Python
        # node manipulation that never releases the GIL, so threads
        # cannot beat processes; only an explicit caller choice applies.
        specs = self._chunk_specs(circuit, trajectories, chunk_size)
        stats = RunStats()
        partials = parallel_map(
            _dd_trajectory_chunk_worker,
            specs,
            n_jobs=jobs or 1,
            on_result=_chunk_progress(specs, progress, "trajectories", "dd"),
            executor=executor,
            shm=shm,
            stats=stats,
        )
        tuner.observe_run(
            "dd_trajectories",
            circuit.num_qubits,
            stats,
            [spec[2] for spec in specs],
        )
        obs_metrics.counter_add("trajectories.count", trajectories)
        total = np.zeros(2**circuit.num_qubits)
        node_counts: List[int] = []
        peak = 0
        for partial, chunk_nodes, chunk_peak in partials:
            total += partial
            node_counts.extend(chunk_nodes)
            peak = max(peak, chunk_peak)
        return NoisyDDResult(
            total / max(trajectories, 1),
            trajectories,
            float(np.mean(node_counts)) if node_counts else 0.0,
            peak,
            metadata={
                "executor": stats.executor,
                "n_jobs": stats.jobs,
                "chunks": len(specs),
                "shm_bytes": stats.shm_bytes,
                "autotune": tuner.audit(),
            },
        )

    def _run_serial(
        self,
        circuit: QuantumCircuit,
        trajectories: int,
        progress: Optional[callable] = None,
    ) -> NoisyDDResult:
        n = circuit.num_qubits
        total = np.zeros(2**n)
        node_counts: List[int] = []
        peak = 0
        reporter = ProgressReporter.maybe(
            progress, "trajectories", total=trajectories, backend="dd"
        )
        for _ in range(trajectories):
            state = self._single_trajectory(circuit)
            total += np.abs(state.to_statevector()) ** 2
            nodes = state.num_nodes()
            node_counts.append(nodes)
            peak = max(peak, nodes)
            if reporter is not None:
                reporter.step()
        if reporter is not None:
            reporter.close()
        obs_metrics.counter_add("trajectories.count", trajectories)
        return NoisyDDResult(
            total / trajectories,
            trajectories,
            float(np.mean(node_counts)),
            peak,
        )

    def run_sampling(
        self,
        circuit: QuantumCircuit,
        shots: int,
        n_jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
        progress: Optional[callable] = None,
        executor: Optional[str] = None,
        shm: Optional[bool] = None,
    ) -> Dict[str, int]:
        """One trajectory per shot, sampled directly from the diagram.

        Never builds a dense 2^n array, so this scales with the diagram
        size rather than the qubit count.
        """
        jobs = configured_jobs(n_jobs)
        if jobs is None and chunk_size is None:
            return self._run_sampling_serial(circuit, shots, progress)
        specs = self._chunk_specs(circuit, shots, chunk_size)
        partials = parallel_map(
            _dd_sampling_chunk_worker,
            specs,
            n_jobs=jobs or 1,
            on_result=_chunk_progress(specs, progress, "shots", "dd"),
            executor=executor,
            shm=shm,
        )
        counts: Dict[str, int] = {}
        for partial in partials:
            for key, value in partial.items():
                counts[key] = counts.get(key, 0) + value
        return counts

    def _run_sampling_serial(
        self,
        circuit: QuantumCircuit,
        shots: int,
        progress: Optional[callable] = None,
    ) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        reporter = ProgressReporter.maybe(
            progress, "shots", total=shots, backend="dd"
        )
        for _ in range(shots):
            state = self._single_trajectory(circuit)
            sample = state.sample_counts(1, seed=int(self._rng.integers(2**31)))
            for key, value in sample.items():
                counts[key] = counts.get(key, 0) + value
            if reporter is not None:
                reporter.step()
        if reporter is not None:
            reporter.close()
        return counts

    def _single_trajectory(self, circuit: QuantumCircuit) -> VectorDD:
        package = DDPackage()
        simulator = DDSimulator(package, seed=int(self._rng.integers(2**31)))
        n = circuit.num_qubits
        state = VectorDD.zero_state(n, package)
        for op in circuit.operations:
            if op.is_barrier:
                continue
            if op.is_measurement:
                _, state = simulator._measure(state, op.targets[0])
                continue
            state = simulator.apply_operation(state, op)
            state = self._apply_noise(package, state, op)
        return state

    def _apply_noise(
        self, package: DDPackage, state: VectorDD, op: Operation
    ) -> VectorDD:
        if self.noise_model is None:
            return state
        channel = self.noise_model.channel_for(
            op.name_with_controls(), op.num_qubits
        )
        if channel is None:
            return state
        if channel.num_qubits == 1:
            for q in op.qubits:
                state = self._sample_kraus(package, state, channel, [q])
        elif channel.num_qubits == len(op.qubits):
            state = self._sample_kraus(package, state, channel, list(op.qubits))
        else:
            raise ValueError(
                f"channel '{channel.name}' arity does not match the operation"
            )
        return state

    def _sample_kraus(
        self,
        package: DDPackage,
        state: VectorDD,
        channel: KrausChannel,
        targets: List[int],
    ) -> VectorDD:
        """Born-weighted Kraus branch selection, with DD-native norms."""
        weights = []
        candidates = []
        for index, kraus in enumerate(channel.operators):
            gate = Gate(f"kraus_{channel.name}_{index}", len(targets), kraus)
            op = Operation(gate, targets)
            edge = package.mv_multiply(
                package.gate_edge(op, state.num_qubits), state.edge
            )
            weight = package.norm(edge) ** 2
            weights.append(weight)
            candidates.append(edge)
        total = sum(weights)
        pick = self._rng.random() * total
        cumulative = 0.0
        chosen = len(weights) - 1
        for index, weight in enumerate(weights):
            cumulative += weight
            if pick <= cumulative:
                chosen = index
                break
        edge = candidates[chosen]
        norm = np.sqrt(max(weights[chosen], 1e-300))
        edge = package.make_edge(edge.node, edge.weight / norm)
        return VectorDD(package, edge, state.num_qubits)
