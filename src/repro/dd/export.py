"""Graphviz-dot and ASCII rendering of decision diagrams.

Offline stand-in for the paper's web-based DD visualization tool [30]:
``to_dot`` output can be rendered with ``dot -Tpdf``, ``to_ascii`` prints a
path-decomposition view directly in a terminal.
"""

from __future__ import annotations

from typing import Dict, List

from .node import DDNode, Edge


def _format_weight(weight: complex) -> str:
    if abs(weight.imag) < 1e-12:
        return f"{weight.real:.4g}"
    if abs(weight.real) < 1e-12:
        return f"{weight.imag:.4g}i"
    return f"{weight.real:.3g}{weight.imag:+.3g}i"


def to_dot(edge: Edge, name: str = "dd") -> str:
    """Render a vector or matrix DD as Graphviz dot source."""
    lines = [f"digraph {name} {{", "  rankdir=TB;", '  node [shape=circle];']
    ids: Dict[int, int] = {}
    order: List[DDNode] = []

    def visit(node: DDNode) -> int:
        key = id(node)
        if key in ids:
            return ids[key]
        ids[key] = len(order)
        order.append(node)
        return ids[key]

    stack = [edge.node]
    while stack:
        node = stack.pop()
        if id(node) in ids:
            continue
        visit(node)
        for e in node.edges:
            if e.weight != 0 and id(e.node) not in ids:
                stack.append(e.node)

    lines.append('  root [shape=point];')
    lines.append(f'  root -> n{ids[id(edge.node)]} [label="{_format_weight(edge.weight)}"];')
    for node in order:
        idx = ids[id(node)]
        if node.is_terminal:
            lines.append(f'  n{idx} [shape=box, label="1"];')
            continue
        lines.append(f'  n{idx} [label="q{node.var}"];')
        for child_pos, e in enumerate(node.edges):
            if e.weight == 0:
                lines.append(f'  z{idx}_{child_pos} [shape=plaintext, label="0"];')
                lines.append(f'  n{idx} -> z{idx}_{child_pos} [style=dashed];')
                continue
            label = _format_weight(e.weight)
            label_part = f' [label="{label}"]' if label != "1" else ""
            lines.append(f"  n{idx} -> n{ids[id(e.node)]}{label_part};")
    lines.append("}")
    return "\n".join(lines)


def to_ascii(edge: Edge, indent: str = "") -> str:
    """Compact indented-tree rendering (shared nodes printed once)."""
    seen: Dict[int, str] = {}
    lines: List[str] = []
    counter = [0]

    def label_for(node: DDNode) -> str:
        if node.is_terminal:
            return "T"
        key = id(node)
        if key not in seen:
            seen[key] = f"N{counter[0]}"
            counter[0] += 1
        return seen[key]

    def rec(e: Edge, prefix: str, branch: str) -> None:
        if e.weight == 0:
            lines.append(f"{prefix}{branch} 0")
            return
        node_label = label_for(e.node)
        weight = _format_weight(e.weight)
        lines.append(f"{prefix}{branch} ({weight}) {node_label}"
                     + ("" if e.node.is_terminal else f" [q{e.node.var}]"))
        if e.node.is_terminal:
            return
        if lines.count(f"ref {node_label}"):
            return
        # expand each node only the first time it is printed
        if node_label in _expanded:
            lines[-1] += " (shared)"
            return
        _expanded.add(node_label)
        for i, child in enumerate(e.node.edges):
            rec(child, prefix + "  ", f"e{i}:")

    _expanded: set = set()
    rec(edge, indent, "root:")
    return "\n".join(lines)
