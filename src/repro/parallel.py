"""Pooled execution layer for embarrassingly parallel workloads.

The paper's simulation task is dominated by two embarrassingly parallel
loops: stochastic noise trajectories (arrays Sec. II, decision diagrams
ref. [13]) and random-stimuli equivalence checking (Sec. IV).  This
module is the one seam they all share:

- :func:`configured_jobs` / :func:`resolve_jobs` — worker-count policy
  (explicit ``n_jobs`` argument, else the ``REPRO_JOBS`` environment
  variable, else serial);
- :func:`resolve_executor` — executor policy (explicit ``executor``
  argument, else the ``REPRO_EXECUTOR`` environment variable, else
  worker processes).  ``"process"`` is a spawn-context
  ``ProcessPoolExecutor``; ``"thread"`` runs chunks on an in-process
  thread pool — zero pickling, zero shared-memory traffic, and real
  concurrency wherever numpy releases the GIL (the BLAS-heavy batched
  kernels), at the cost of sharing the GIL on pure-Python work;
- :func:`spawn_seeds` / :func:`chunk_sizes` — deterministic work
  splitting.  Chunk boundaries and per-chunk RNG streams
  (``numpy.random.SeedSequence.spawn``) depend only on the task size and
  the seed, never on the worker count *or the executor*, so a seeded run
  is bitwise reproducible at any ``n_jobs`` on either executor;
- :class:`ProcessPool` / :class:`ThreadPool` — context-manager pools
  that always drain cleanly: a crashing task, a ``KeyboardInterrupt``,
  or an abandoned result iterator cancels the remaining work and joins
  every worker before control leaves the ``with`` block;
- :func:`parallel_map` / :func:`task_stream` — the two call shapes the
  library uses (eager ordered map; lazy ordered stream with early exit).

Process-pool task functions must be module-level (picklable by
reference) and task payloads must pickle; circuits, noise models,
budgets, and ``SeedSequence`` objects all do.  The pool uses the
``spawn`` start method everywhere — ``fork`` is unsafe once numpy's
threadpools exist.  Thread-pool tasks have no such constraint.

Large result arrays skip the pickle pipe entirely: when the
shared-memory plane (:mod:`repro.parallel_shm`) is enabled — the
default wherever ``multiprocessing.shared_memory`` works — a pooled
task's result is scanned for arrays at or above the size threshold,
each is copied once into a named segment, and only the small
:class:`~repro.parallel_shm.ShmArray` handles are pickled back.  The
parent attaches zero-copy views and unlinks the names immediately; the
pool teardown path sweeps the run's leftover segments on *every* exit,
so a worker killed mid-chunk or a ``KeyboardInterrupt`` in the parent
cannot leak ``/dev/shm`` entries.  ``REPRO_SHM=0`` opts out; results
are bitwise identical either way.

Resource budgets compose: callers hand workers a *share* of their
:class:`~repro.resources.ResourceBudget` via
:meth:`~repro.resources.ResourceBudget.share` (memory is divided across
workers that allocate concurrently; the wall-clock deadline propagates
as-is because workers run side by side).  A
:class:`~repro.resources.ResourceExhausted` raised inside a worker
pickles back to the parent with its structured context intact and
surfaces after the pool has been drained, so the registry dispatcher's
fallback chain sees exactly the error a serial run would have produced.

Observability composes here too: when tracing
(:mod:`repro.obs.trace`) is enabled in the parent, each pooled task runs
inside its own trace session in the worker and ships its spans and
metric snapshot back alongside the result; the parent adopts the spans
under its current span (worker span ids embed the worker pid, so they
never collide), merges the metrics, and records every chunk's wall time
in the ``parallel.chunk.wall_s`` histogram and the run's shm traffic in
``parallel.shm.bytes``/``parallel.shm.segments``.  Independent of
tracing, every pooled call can fill a :class:`RunStats` — per-chunk
wall times, pool startup latency, shm byte counts — which is the raw
measurement feed of the runtime autotuner
(:mod:`repro.arrays.autotune`).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from functools import partial
from multiprocessing import get_context
from typing import Any, Callable, Iterator, List, Optional, Sequence

import numpy as np

from . import parallel_shm
from .obs import metrics as obs_metrics
from .obs import trace as obs_trace
from .obs.metrics import (
    PARALLEL_CHUNK_WALL_S,
    PARALLEL_SHM_BYTES,
    PARALLEL_SHM_SEGMENTS,
)

JOBS_ENV_VAR = "REPRO_JOBS"
"""Environment variable supplying a default worker count.

Set e.g. ``REPRO_JOBS=2`` to run every parallel-capable loop in the
library (trajectories, random stimuli, ``simulate_many``) on two worker
processes without touching call sites; an explicit ``n_jobs=`` argument
always wins.  ``0`` or a negative value means "all available cores".
"""

EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"
"""Environment variable supplying a default executor kind.

``process`` (the default) runs chunks on a spawn-safe process pool;
``thread`` runs them on an in-process thread pool with zero
serialization.  An explicit ``executor=`` argument always wins.
"""

EXECUTORS = ("process", "thread")

DEFAULT_CHUNKS = 8
"""Default number of work chunks a parallel loop is split into.

Fixed (rather than derived from the worker count) so that chunk
boundaries — and therefore per-chunk RNG streams and merge order — are
identical at every ``n_jobs``.  The runtime autotuner may substitute a
measured chunk *size* (see :mod:`repro.arrays.autotune`); that decision
is likewise independent of the worker count and the executor.
"""


def configured_jobs(n_jobs: Optional[int] = None) -> Optional[int]:
    """Resolve a worker count, or ``None`` when parallelism is unconfigured.

    ``None`` with no ``REPRO_JOBS`` in the environment returns ``None``,
    which callers treat as "keep the legacy serial path".  Anything else
    resolves like :func:`resolve_jobs`.
    """
    if n_jobs is None:
        spec = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not spec:
            return None
        n_jobs = int(spec)
    return resolve_jobs(n_jobs)


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Concrete worker count: ``None`` -> env default -> 1; ``<= 0`` -> all cores."""
    if n_jobs is None:
        return configured_jobs(None) or 1
    n_jobs = int(n_jobs)
    if n_jobs <= 0:
        return os.cpu_count() or 1
    return n_jobs


def resolve_executor(executor: Optional[str] = None) -> str:
    """Concrete executor kind: explicit -> ``REPRO_EXECUTOR`` -> ``process``."""
    if executor is None:
        executor = (
            os.environ.get(EXECUTOR_ENV_VAR, "").strip().lower() or "process"
        )
    executor = str(executor).lower()
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor '{executor}'; choose from {EXECUTORS}"
        )
    return executor


def spawn_seeds(seed: int, count: int) -> List[np.random.SeedSequence]:
    """``count`` independent child seed sequences of ``seed``.

    ``SeedSequence.spawn`` guarantees the children's streams are
    statistically independent of each other and of the parent, and the
    construction is a pure function of ``(seed, count)`` — workers get
    the same streams no matter how chunks are scheduled.
    """
    return list(np.random.SeedSequence(seed).spawn(count))


def chunk_sizes(
    total: int,
    num_chunks: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[int]:
    """Split ``total`` work items into near-equal deterministic chunks.

    The split depends only on ``total`` and the explicit ``num_chunks``/
    ``chunk_size`` overrides — never on the worker count — so seeded
    results merge identically at any ``n_jobs``.  Callers that accept an
    autotuned chunk size pass it through ``chunk_size`` here; the
    tuner's decision is itself worker-count independent (see
    :meth:`repro.arrays.autotune.Autotuner.chunk_size_for`), so the
    guarantee survives autotuning.
    """
    if total <= 0:
        return []
    if chunk_size is not None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        num_chunks = -(-total // chunk_size)
    elif num_chunks is None:
        num_chunks = min(total, DEFAULT_CHUNKS)
    num_chunks = max(1, min(int(num_chunks), total))
    base, extra = divmod(total, num_chunks)
    return [base + (1 if i < extra else 0) for i in range(num_chunks)]


def reap_process(process: Any, timeout_s: float = 5.0) -> None:
    """Terminate-then-kill teardown for one child process, always reaped.

    The escalation discipline every process owner in the library shares
    (pool teardown here, shard managers in
    :mod:`repro.service.remote.cluster`): ask politely with
    ``terminate()`` (SIGTERM), wait up to ``timeout_s``, then ``kill()``
    (SIGKILL) and wait again so the child can never linger as a zombie.
    Duck-typed over both ``subprocess.Popen`` (``poll``/``wait``) and
    ``multiprocessing.Process`` (``is_alive``/``join``); already-dead
    children are still waited on once to reap their exit status.
    """
    is_popen = hasattr(process, "poll")

    def _alive() -> bool:
        return (
            process.poll() is None if is_popen else process.is_alive()
        )

    def _wait(seconds: float) -> None:
        try:
            if is_popen:
                process.wait(timeout=seconds)
            else:
                process.join(timeout=seconds)
        except Exception:
            pass

    if _alive():
        try:
            process.terminate()
        except OSError:
            pass
        _wait(timeout_s)
    if _alive():
        try:
            process.kill()
        except OSError:
            pass
        _wait(timeout_s)
    else:
        _wait(0.1)


class RunStats:
    """Measurements one pooled call leaves behind for the autotuner.

    Filled by :func:`parallel_map` / :func:`task_stream` when passed in:
    per-chunk wall seconds (in task order), the pool's startup latency
    estimate (submit-to-first-result minus that task's own duration),
    the executor that actually ran, and the shared-memory traffic.
    All of it is measurement-only — nothing here feeds back into chunk
    boundaries or RNG streams, so collecting stats never perturbs
    results.
    """

    __slots__ = (
        "chunk_seconds",
        "executor",
        "jobs",
        "pool_startup_s",
        "shm_bytes",
        "shm_segments",
    )

    def __init__(self) -> None:
        self.chunk_seconds: List[float] = []
        self.executor: Optional[str] = None
        self.jobs: int = 1
        self.pool_startup_s: float = 0.0
        self.shm_bytes: int = 0
        self.shm_segments: int = 0


class ProcessPool:
    """A spawn-context process pool that always drains cleanly.

    Use as a context manager::

        with ProcessPool(4) as pool:
            results = pool.map(fn, tasks)

    On *any* exit — normal completion, a task exception, or a
    ``KeyboardInterrupt`` in the parent — pending tasks are cancelled
    and every worker process is joined before ``__exit__`` returns, so
    no child processes leak.  On a hard abort (``BaseException`` that is
    not an ``Exception``, e.g. ``KeyboardInterrupt``) still-running
    workers are terminated rather than waited for.
    """

    def __init__(self, n_jobs: int) -> None:
        self.n_jobs = max(1, int(n_jobs))
        self._executor: Optional[ProcessPoolExecutor] = None
        self._futures: List[Any] = []

    def __enter__(self) -> "ProcessPool":
        self._executor = ProcessPoolExecutor(
            max_workers=self.n_jobs, mp_context=get_context("spawn")
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        executor, self._executor = self._executor, None
        futures, self._futures = self._futures, []
        if executor is None:
            return False
        try:
            for future in futures:
                future.cancel()
            if exc_type is not None and not (
                isinstance(exc_type, type) and issubclass(exc_type, Exception)
            ):
                # Hard abort (KeyboardInterrupt/SystemExit): don't wait for
                # running tasks — kill the workers outright.
                for process in getattr(executor, "_processes", {}).values():
                    process.terminate()
            executor.shutdown(wait=True, cancel_futures=True)
        finally:
            del executor
        return False

    def _require_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            raise RuntimeError("ProcessPool used outside its context manager")
        return self._executor

    def submit(self, fn: Callable, *args: Any) -> Any:
        """Submit one ``fn(*args)`` call; the future is tracked for cleanup.

        The single-task seam the job engine (:mod:`repro.service`)
        schedules on: jobs arrive one at a time from the queue rather
        than as a pre-known sequence, but still get cancelled and joined
        by ``__exit__`` like ``submit_all`` futures.
        """
        future = self._require_executor().submit(fn, *args)
        self._futures.append(future)
        return future

    def submit_all(self, fn: Callable, tasks: Sequence[Any]) -> List[Any]:
        """Submit one future per task; futures are tracked for cleanup."""
        executor = self._require_executor()
        futures = [executor.submit(fn, task) for task in tasks]
        self._futures.extend(futures)
        return futures

    def imap(self, fn: Callable, tasks: Sequence[Any]) -> Iterator[Any]:
        """Yield ``fn(task)`` results in task order.

        All tasks are submitted up front; abandoning the iterator (early
        exit) leaves the remaining futures to be cancelled by
        ``__exit__``.
        """
        for future in self.submit_all(fn, tasks):
            yield future.result()

    def map(self, fn: Callable, tasks: Sequence[Any]) -> List[Any]:
        """Eager ordered map over the pool."""
        return list(self.imap(fn, tasks))


class ThreadPool:
    """Thread-pool twin of :class:`ProcessPool` — same interface, no pickling.

    Tasks run in this process, so payloads and results cross no
    serialization boundary at all (the zero-copy limit).  Worth it
    whenever the chunk work releases the GIL — the batched trajectory
    kernel and TN slice contractions spend their time inside numpy's
    BLAS calls, which do — and always cheaper to start than a spawned
    process pool.
    """

    def __init__(self, n_jobs: int) -> None:
        self.n_jobs = max(1, int(n_jobs))
        self._executor: Optional[ThreadPoolExecutor] = None
        self._futures: List[Any] = []

    def __enter__(self) -> "ThreadPool":
        self._executor = ThreadPoolExecutor(
            max_workers=self.n_jobs, thread_name_prefix="repro-pool"
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        executor, self._executor = self._executor, None
        futures, self._futures = self._futures, []
        if executor is None:
            return False
        for future in futures:
            future.cancel()
        executor.shutdown(wait=True, cancel_futures=True)
        return False

    def _require_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            raise RuntimeError("ThreadPool used outside its context manager")
        return self._executor

    def submit(self, fn: Callable, *args: Any) -> Any:
        """Submit one ``fn(*args)`` call; the future is tracked for cleanup."""
        future = self._require_executor().submit(fn, *args)
        self._futures.append(future)
        return future

    def submit_all(self, fn: Callable, tasks: Sequence[Any]) -> List[Any]:
        executor = self._require_executor()
        futures = [executor.submit(fn, task) for task in tasks]
        self._futures.extend(futures)
        return futures

    def imap(self, fn: Callable, tasks: Sequence[Any]) -> Iterator[Any]:
        for future in self.submit_all(fn, tasks):
            yield future.result()

    def map(self, fn: Callable, tasks: Sequence[Any]) -> List[Any]:
        return list(self.imap(fn, tasks))


def _make_pool(executor: str, jobs: int):
    if executor == "thread":
        return ThreadPool(jobs)
    return ProcessPool(jobs)


class _TaskResult:
    """Envelope a pooled task sends back: payload + measurements.

    ``value`` is the task's result, possibly shm-encoded
    (:func:`repro.parallel_shm.encode_result`); ``report`` the worker's
    trace session report when the parent had tracing on; ``duration_s``
    the task's wall time on the worker's clock (measured always — it
    costs two clock reads and feeds the autotuner through
    :class:`RunStats` without requiring tracing).
    """

    __slots__ = ("value", "report", "duration_s")

    def __init__(
        self, value: Any, report: Optional[dict], duration_s: float
    ) -> None:
        self.value = value
        self.report = report
        self.duration_s = duration_s


def _pooled_task(
    fn: Callable,
    token: Optional[str],
    threshold: int,
    traced: bool,
    task: Any,
) -> "_TaskResult":
    """Run one pooled task (worker side of the process pool).

    Wrapped around the task function with ``functools.partial`` so it
    stays picklable by reference.  Three concerns compose here:

    - the task runs inside its own trace session when the parent has
      tracing enabled, and ships spans + metrics back in the envelope;
    - its wall time is measured unconditionally;
    - with a run ``token``, large result arrays are moved into shared
      memory (:func:`repro.parallel_shm.encode_result`) and the token is
      installed as the worker's active token while the task runs, so
      any segments the task itself publishes are swept by the parent's
      teardown if this worker dies before delivering them.
    """
    previous = parallel_shm.set_current_token(token)
    try:
        if traced:
            from .obs import trace_session

            with trace_session() as session:
                chunk = obs_trace.timed_span(
                    "parallel.chunk", fn=getattr(fn, "__name__", str(fn))
                )
                try:
                    value = fn(task)
                finally:
                    chunk.finish()
            report = session.report()
            duration = chunk.duration_s
        else:
            chunk = obs_trace.timed_span("parallel.chunk")
            try:
                value = fn(task)
            finally:
                chunk.finish()
            report = None
            duration = chunk.duration_s
        if token is not None:
            value = parallel_shm.encode_result(value, token, threshold)
        return _TaskResult(value, report, duration)
    finally:
        parallel_shm.set_current_token(previous)


def _threaded_task(fn: Callable, traced: bool, task: Any) -> "_TaskResult":
    """Thread-pool twin of :func:`_pooled_task`: no token, no encoding.

    Trace sessions are thread-local, so the worker thread records into
    its own session and the envelope carries the report back to the
    parent thread exactly like the process path — span ids share the
    parent's pid but draw from one process-wide atomic counter, so they
    never collide.
    """
    if traced:
        from .obs import trace_session

        with trace_session() as session:
            chunk = obs_trace.timed_span(
                "parallel.chunk", fn=getattr(fn, "__name__", str(fn))
            )
            try:
                value = fn(task)
            finally:
                chunk.finish()
        return _TaskResult(value, session.report(), chunk.duration_s)
    chunk = obs_trace.timed_span("parallel.chunk")
    try:
        value = fn(task)
    finally:
        chunk.finish()
    return _TaskResult(value, None, chunk.duration_s)


def _consume(
    raw: Any, traced: bool, stats: Optional[RunStats]
) -> Any:
    """Unwrap a task envelope on the parent side.

    Adopts the worker's trace spans and metrics (when traced), folds the
    chunk duration and shm traffic into ``stats``, and decodes any
    shared-memory handles into zero-copy arrays.
    """
    if not isinstance(raw, _TaskResult):
        return raw
    if traced and raw.report is not None and obs_trace.enabled():
        obs_trace.current_recorder().adopt(
            raw.report.get("spans", ()), obs_trace.current_span_id()
        )
        obs_metrics.merge_snapshot(raw.report.get("metrics"))
    if obs_trace.enabled():
        obs_metrics.observe(PARALLEL_CHUNK_WALL_S, raw.duration_s)
    if stats is not None:
        stats.chunk_seconds.append(raw.duration_s)
    value = raw.value
    if isinstance(value, parallel_shm._Encoded):
        transfer = parallel_shm.TransferStats()
        value = parallel_shm.decode_result(value, transfer)
        if obs_trace.enabled():
            obs_metrics.counter_add(PARALLEL_SHM_BYTES, transfer.shm_bytes)
            obs_metrics.counter_add(
                PARALLEL_SHM_SEGMENTS, transfer.segments
            )
        if stats is not None:
            stats.shm_bytes += transfer.shm_bytes
            stats.shm_segments += transfer.segments
    return value


def _run_inline(
    fn: Callable, task: Any, stats: Optional[RunStats] = None
) -> Any:
    """Serial-path twin of the pooled wrappers: same span, no pool."""
    chunk = obs_trace.timed_span(
        "parallel.chunk", fn=getattr(fn, "__name__", str(fn)), inline=True
    )
    try:
        value = fn(task)
    finally:
        chunk.finish()
    if obs_trace.enabled():
        obs_metrics.observe(PARALLEL_CHUNK_WALL_S, chunk.duration_s)
    if stats is not None:
        stats.chunk_seconds.append(chunk.duration_s)
    return value


def _use_shm(executor: str, shm: Optional[bool]) -> bool:
    """Shm transfer policy for one pooled call.

    Threads share an address space — results are handed over as live
    objects — so the plane only ever engages on the process executor.
    ``shm=None`` defers to the environment policy
    (:func:`repro.parallel_shm.enabled`).
    """
    if executor != "process":
        return False
    if shm is None:
        return parallel_shm.enabled()
    return bool(shm) and parallel_shm.available()


def parallel_map(
    fn: Callable,
    tasks: Sequence[Any],
    n_jobs: Optional[int] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
    executor: Optional[str] = None,
    shm: Optional[bool] = None,
    stats: Optional[RunStats] = None,
) -> List[Any]:
    """Ordered ``[fn(t) for t in tasks]``, on a pool when ``n_jobs > 1``.

    With one job (or at most one task) everything runs inline in this
    process — no pool, no pickling — which is also the reference
    execution the parallel paths must match bitwise.  ``executor``
    selects worker processes (default) or threads; ``shm`` overrides
    the shared-memory transfer policy for this call (process executor
    only); ``stats`` collects per-chunk timings for the autotuner.

    ``on_result(index, result)`` fires in task order as each result is
    consumed (pooled or inline); chunked loops use it to stream progress
    events from the parent process, where the user's callback lives.
    """
    jobs = resolve_jobs(n_jobs)
    kind = resolve_executor(executor)
    results: List[Any] = []
    if jobs <= 1 or len(tasks) <= 1:
        if stats is not None:
            stats.executor, stats.jobs = "inline", 1
        for index, task in enumerate(tasks):
            value = _run_inline(fn, task, stats)
            if on_result is not None:
                on_result(index, value)
            results.append(value)
        return results
    traced = obs_trace.enabled()
    if stats is not None:
        stats.executor, stats.jobs = kind, jobs
    if kind == "thread":
        wrapped = partial(_threaded_task, fn, traced)
        with ThreadPool(jobs) as pool:
            started = obs_trace.clock()
            for index, raw in enumerate(pool.imap(wrapped, tasks)):
                value = _consume(raw, traced, stats)
                if index == 0 and stats is not None:
                    stats.pool_startup_s = max(
                        obs_trace.clock() - started - raw.duration_s, 0.0
                    )
                if on_result is not None:
                    on_result(index, value)
                results.append(value)
        return results
    token = parallel_shm.new_token() if _use_shm(kind, shm) else None
    wrapped = partial(_pooled_task, fn, token, parallel_shm.min_bytes(), traced)
    if token is not None:
        parallel_shm.track_token(token)
    try:
        with ProcessPool(jobs) as pool:
            started = obs_trace.clock()
            for index, raw in enumerate(pool.imap(wrapped, tasks)):
                value = _consume(raw, traced, stats)
                if index == 0 and stats is not None:
                    stats.pool_startup_s = max(
                        obs_trace.clock() - started - raw.duration_s, 0.0
                    )
                if on_result is not None:
                    on_result(index, value)
                results.append(value)
    finally:
        if token is not None:
            # Sweep leftovers on every exit: a worker killed mid-chunk
            # created segments whose handles never arrived; a
            # KeyboardInterrupt abandoned undelivered results.  Either
            # way the names carry this run's token and die here.
            parallel_shm.release_token(token)
    return results


@contextmanager
def task_stream(
    fn: Callable,
    tasks: Sequence[Any],
    n_jobs: Optional[int] = None,
    executor: Optional[str] = None,
    shm: Optional[bool] = None,
    stats: Optional[RunStats] = None,
):
    """Ordered lazy result stream with clean early exit.

    Usage::

        with task_stream(fn, tasks, n_jobs=4) as results:
            for result in results:
                if bad(result):
                    break   # remaining tasks are cancelled, workers joined

    Serial (``n_jobs=1``) streams evaluate tasks lazily, so breaking out
    skips the remaining work exactly like the pooled version cancels it.
    Like :func:`parallel_map`, pooled tasks carry their trace spans,
    chunk timings, and shared-memory payloads back to the parent.
    """
    jobs = resolve_jobs(n_jobs)
    kind = resolve_executor(executor)
    if jobs <= 1 or len(tasks) <= 1:
        if stats is not None:
            stats.executor, stats.jobs = "inline", 1
        yield (_run_inline(fn, task, stats) for task in tasks)
        return
    traced = obs_trace.enabled()
    if stats is not None:
        stats.executor, stats.jobs = kind, jobs
    if kind == "thread":
        wrapped = partial(_threaded_task, fn, traced)
        with ThreadPool(jobs) as pool:
            yield (
                _consume(raw, traced, stats)
                for raw in pool.imap(wrapped, tasks)
            )
        return
    token = parallel_shm.new_token() if _use_shm(kind, shm) else None
    wrapped = partial(_pooled_task, fn, token, parallel_shm.min_bytes(), traced)
    if token is not None:
        parallel_shm.track_token(token)
    try:
        with ProcessPool(jobs) as pool:
            yield (
                _consume(raw, traced, stats)
                for raw in pool.imap(wrapped, tasks)
            )
    finally:
        if token is not None:
            parallel_shm.release_token(token)
