"""Process-pool execution layer for embarrassingly parallel workloads.

The paper's simulation task is dominated by two embarrassingly parallel
loops: stochastic noise trajectories (arrays Sec. II, decision diagrams
ref. [13]) and random-stimuli equivalence checking (Sec. IV).  This
module is the one seam they all share:

- :func:`configured_jobs` / :func:`resolve_jobs` — worker-count policy
  (explicit ``n_jobs`` argument, else the ``REPRO_JOBS`` environment
  variable, else serial);
- :func:`spawn_seeds` / :func:`chunk_sizes` — deterministic work
  splitting.  Chunk boundaries and per-chunk RNG streams
  (``numpy.random.SeedSequence.spawn``) depend only on the task size and
  the seed, never on the worker count, so a seeded run is bitwise
  reproducible at any ``n_jobs``;
- :class:`ProcessPool` — a context-manager wrapper around a spawn-context
  ``ProcessPoolExecutor`` that always drains cleanly: a crashing task, a
  ``KeyboardInterrupt``, or an abandoned result iterator cancels the
  remaining work and joins every worker before control leaves the
  ``with`` block;
- :func:`parallel_map` / :func:`task_stream` — the two call shapes the
  library uses (eager ordered map; lazy ordered stream with early exit).

Task functions must be module-level (picklable by reference) and task
payloads must pickle; circuits, noise models, budgets, and
``SeedSequence`` objects all do.  The pool uses the ``spawn`` start
method everywhere — ``fork`` is unsafe once numpy's threadpools exist.

Resource budgets compose: callers hand workers a *share* of their
:class:`~repro.resources.ResourceBudget` via
:meth:`~repro.resources.ResourceBudget.share` (memory is divided across
workers that allocate concurrently; the wall-clock deadline propagates
as-is because workers run side by side).  A
:class:`~repro.resources.ResourceExhausted` raised inside a worker
pickles back to the parent with its structured context intact and
surfaces after the pool has been drained, so the registry dispatcher's
fallback chain sees exactly the error a serial run would have produced.

Observability composes here too: when tracing
(:mod:`repro.obs.trace`) is enabled in the parent, each pooled task runs
inside its own trace session in the worker and ships its spans and
metric snapshot back alongside the result; the parent adopts the spans
under its current span (worker span ids embed the worker pid, so they
never collide), merges the metrics, and records every chunk's wall time
in the ``parallel.chunk.wall_s`` histogram.  The ``on_result`` hook on
:func:`parallel_map` fires in task order as results are consumed, which
is how chunked loops stream :class:`~repro.obs.progress.ProgressEvent`s
to a parent-side callback without pickling it.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from functools import partial
from multiprocessing import get_context
from typing import Any, Callable, Iterator, List, Optional, Sequence

import numpy as np

from .obs import metrics as obs_metrics
from .obs import trace as obs_trace

JOBS_ENV_VAR = "REPRO_JOBS"
"""Environment variable supplying a default worker count.

Set e.g. ``REPRO_JOBS=2`` to run every parallel-capable loop in the
library (trajectories, random stimuli, ``simulate_many``) on two worker
processes without touching call sites; an explicit ``n_jobs=`` argument
always wins.  ``0`` or a negative value means "all available cores".
"""

DEFAULT_CHUNKS = 8
"""Default number of work chunks a parallel loop is split into.

Fixed (rather than derived from the worker count) so that chunk
boundaries — and therefore per-chunk RNG streams and merge order — are
identical at every ``n_jobs``.
"""


def configured_jobs(n_jobs: Optional[int] = None) -> Optional[int]:
    """Resolve a worker count, or ``None`` when parallelism is unconfigured.

    ``None`` with no ``REPRO_JOBS`` in the environment returns ``None``,
    which callers treat as "keep the legacy serial path".  Anything else
    resolves like :func:`resolve_jobs`.
    """
    if n_jobs is None:
        spec = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not spec:
            return None
        n_jobs = int(spec)
    return resolve_jobs(n_jobs)


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Concrete worker count: ``None`` -> env default -> 1; ``<= 0`` -> all cores."""
    if n_jobs is None:
        return configured_jobs(None) or 1
    n_jobs = int(n_jobs)
    if n_jobs <= 0:
        return os.cpu_count() or 1
    return n_jobs


def spawn_seeds(seed: int, count: int) -> List[np.random.SeedSequence]:
    """``count`` independent child seed sequences of ``seed``.

    ``SeedSequence.spawn`` guarantees the children's streams are
    statistically independent of each other and of the parent, and the
    construction is a pure function of ``(seed, count)`` — workers get
    the same streams no matter how chunks are scheduled.
    """
    return list(np.random.SeedSequence(seed).spawn(count))


def chunk_sizes(
    total: int,
    num_chunks: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[int]:
    """Split ``total`` work items into near-equal deterministic chunks.

    The split depends only on ``total`` and the explicit ``num_chunks``/
    ``chunk_size`` overrides — never on the worker count — so seeded
    results merge identically at any ``n_jobs``.
    """
    if total <= 0:
        return []
    if chunk_size is not None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        num_chunks = -(-total // chunk_size)
    elif num_chunks is None:
        num_chunks = min(total, DEFAULT_CHUNKS)
    num_chunks = max(1, min(int(num_chunks), total))
    base, extra = divmod(total, num_chunks)
    return [base + (1 if i < extra else 0) for i in range(num_chunks)]


class ProcessPool:
    """A spawn-context process pool that always drains cleanly.

    Use as a context manager::

        with ProcessPool(4) as pool:
            results = pool.map(fn, tasks)

    On *any* exit — normal completion, a task exception, or a
    ``KeyboardInterrupt`` in the parent — pending tasks are cancelled
    and every worker process is joined before ``__exit__`` returns, so
    no child processes leak.  On a hard abort (``BaseException`` that is
    not an ``Exception``, e.g. ``KeyboardInterrupt``) still-running
    workers are terminated rather than waited for.
    """

    def __init__(self, n_jobs: int) -> None:
        self.n_jobs = max(1, int(n_jobs))
        self._executor: Optional[ProcessPoolExecutor] = None
        self._futures: List[Any] = []

    def __enter__(self) -> "ProcessPool":
        self._executor = ProcessPoolExecutor(
            max_workers=self.n_jobs, mp_context=get_context("spawn")
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        executor, self._executor = self._executor, None
        futures, self._futures = self._futures, []
        if executor is None:
            return False
        try:
            for future in futures:
                future.cancel()
            if exc_type is not None and not (
                isinstance(exc_type, type) and issubclass(exc_type, Exception)
            ):
                # Hard abort (KeyboardInterrupt/SystemExit): don't wait for
                # running tasks — kill the workers outright.
                for process in getattr(executor, "_processes", {}).values():
                    process.terminate()
            executor.shutdown(wait=True, cancel_futures=True)
        finally:
            del executor
        return False

    def _require_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            raise RuntimeError("ProcessPool used outside its context manager")
        return self._executor

    def submit_all(self, fn: Callable, tasks: Sequence[Any]) -> List[Any]:
        """Submit one future per task; futures are tracked for cleanup."""
        executor = self._require_executor()
        futures = [executor.submit(fn, task) for task in tasks]
        self._futures.extend(futures)
        return futures

    def imap(self, fn: Callable, tasks: Sequence[Any]) -> Iterator[Any]:
        """Yield ``fn(task)`` results in task order.

        All tasks are submitted up front; abandoning the iterator (early
        exit) leaves the remaining futures to be cancelled by
        ``__exit__``.
        """
        for future in self.submit_all(fn, tasks):
            yield future.result()

    def map(self, fn: Callable, tasks: Sequence[Any]) -> List[Any]:
        """Eager ordered map over the pool."""
        return list(self.imap(fn, tasks))


class _TracedResult:
    """Pickled envelope a traced worker task sends back: result + report."""

    __slots__ = ("value", "report")

    def __init__(self, value: Any, report: dict) -> None:
        self.value = value
        self.report = report


def _traced_task(fn: Callable, task: Any) -> "_TracedResult":
    """Run one pooled task inside its own trace session (worker side).

    Wrapped around the task function with ``functools.partial`` (so it
    stays picklable by reference) when the parent has tracing enabled.
    The worker's spans and metrics travel back in the
    :class:`_TracedResult` envelope and are folded into the parent's
    recorder by :func:`_absorb_traced`.
    """
    from .obs import trace_session

    with trace_session() as session:
        chunk = obs_trace.timed_span(
            "parallel.chunk", fn=getattr(fn, "__name__", str(fn))
        )
        try:
            value = fn(task)
        finally:
            chunk.finish()
    return _TracedResult(value, session.report())


def _absorb_traced(raw: Any) -> Any:
    """Merge a worker's trace report into the parent recorder (parent side)."""
    if not isinstance(raw, _TracedResult):
        return raw
    if obs_trace.enabled():
        report = raw.report
        obs_trace.current_recorder().adopt(
            report.get("spans", ()), obs_trace.current_span_id()
        )
        obs_metrics.merge_snapshot(report.get("metrics"))
        for entry in report.get("spans", ()):
            if entry.get("name") == "parallel.chunk":
                obs_metrics.observe("parallel.chunk.wall_s", entry["duration_s"])
    return raw.value


def _run_inline(fn: Callable, task: Any) -> Any:
    """Serial-path twin of :func:`_traced_task`: same span, no session."""
    chunk = obs_trace.timed_span(
        "parallel.chunk", fn=getattr(fn, "__name__", str(fn)), inline=True
    )
    try:
        value = fn(task)
    finally:
        chunk.finish()
    if obs_trace.enabled():
        obs_metrics.observe("parallel.chunk.wall_s", chunk.duration_s)
    return value


def parallel_map(
    fn: Callable,
    tasks: Sequence[Any],
    n_jobs: Optional[int] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> List[Any]:
    """Ordered ``[fn(t) for t in tasks]``, on a pool when ``n_jobs > 1``.

    With one job (or at most one task) everything runs inline in this
    process — no pool, no pickling — which is also the reference
    execution the parallel path must match bitwise.

    ``on_result(index, result)`` fires in task order as each result is
    consumed (pooled or inline); chunked loops use it to stream progress
    events from the parent process, where the user's callback lives.
    """
    jobs = resolve_jobs(n_jobs)
    results: List[Any] = []
    if jobs <= 1 or len(tasks) <= 1:
        for index, task in enumerate(tasks):
            value = _run_inline(fn, task)
            if on_result is not None:
                on_result(index, value)
            results.append(value)
        return results
    traced = obs_trace.enabled()
    wrapped = partial(_traced_task, fn) if traced else fn
    with ProcessPool(jobs) as pool:
        for index, raw in enumerate(pool.imap(wrapped, tasks)):
            value = _absorb_traced(raw) if traced else raw
            if on_result is not None:
                on_result(index, value)
            results.append(value)
    return results


@contextmanager
def task_stream(
    fn: Callable,
    tasks: Sequence[Any],
    n_jobs: Optional[int] = None,
):
    """Ordered lazy result stream with clean early exit.

    Usage::

        with task_stream(fn, tasks, n_jobs=4) as results:
            for result in results:
                if bad(result):
                    break   # remaining tasks are cancelled, workers joined

    Serial (``n_jobs=1``) streams evaluate tasks lazily, so breaking out
    skips the remaining work exactly like the pooled version cancels it.
    Like :func:`parallel_map`, pooled tasks carry their trace spans back
    to the parent when tracing is enabled.
    """
    jobs = resolve_jobs(n_jobs)
    if jobs <= 1 or len(tasks) <= 1:
        yield (_run_inline(fn, task) for task in tasks)
        return
    traced = obs_trace.enabled()
    wrapped = partial(_traced_task, fn) if traced else fn
    with ProcessPool(jobs) as pool:
        results = pool.imap(wrapped, tasks)
        if traced:
            results = (_absorb_traced(raw) for raw in results)
        yield results
