"""Programmatic regeneration of the paper's figures.

Fig. 1: the Bell state as a state vector and as a decision diagram;
Fig. 2: the Bell circuit as a tensor network;
Fig. 3: ZX-diagrams of the Bell circuit.

Each renderer returns text (a table, Graphviz dot, or ASCII art) so the
figures can be regenerated offline — the stand-in for the web-based
visualization tool the paper links (ref. [30]).
"""

from __future__ import annotations


import numpy as np

from ..dd import export as dd_export
from ..dd.node import Edge
from ..tn.network import TensorNetwork
from ..zx.diagram import ZXDiagram
from ..zx import export as zx_export


def statevector_table(state: np.ndarray, label: str = "amplitude") -> str:
    """Fig. 1a style: basis states annotated with their amplitudes."""
    num_qubits = int(len(state)).bit_length() - 1
    lines = [f"{'basis':>{num_qubits + 2}}  {label}"]
    for index, amp in enumerate(state):
        bits = format(index, f"0{num_qubits}b")
        if abs(amp.imag) < 1e-12:
            text = f"{amp.real:+.4f}"
        else:
            text = f"{amp.real:+.3f}{amp.imag:+.3f}i"
        lines.append(f"|{bits}>  {text}")
    return "\n".join(lines)


def render_dd_dot(edge: Edge, name: str = "dd") -> str:
    """Fig. 1b style: a decision diagram as Graphviz dot."""
    return dd_export.to_dot(edge, name)


def render_tn_dot(network: TensorNetwork, name: str = "tn") -> str:
    """Fig. 2 style: tensors as bubbles, shared indices as bonds."""
    lines = [f"graph {name} {{", "  rankdir=LR;", "  node [shape=circle];"]
    dims = network.index_dimensions()
    for pos, tensor in enumerate(network.tensors):
        shape = "x".join(str(d) for d in tensor.data.shape) or "scalar"
        lines.append(f'  t{pos} [label="T{pos}\\n{shape}"];')
    owners = {}
    for pos, tensor in enumerate(network.tensors):
        for index in tensor.indices:
            owners.setdefault(index, []).append(pos)
    for index, positions in owners.items():
        if len(positions) == 2:
            a, b = positions
            lines.append(f'  t{a} -- t{b} [label="{index} (d={dims[index]})"];')
        elif len(positions) == 1:
            (a,) = positions
            lines.append(f'  open_{index} [shape=plaintext, label="{index}"];')
            lines.append(f"  t{a} -- open_{index} [style=dotted];")
    lines.append("}")
    return "\n".join(lines)


def render_zx_dot(diagram: ZXDiagram, name: str = "zx") -> str:
    """Fig. 3 style: green/red spiders, dashed Hadamard wires."""
    return zx_export.to_dot(diagram, name)


def bell_figure_ascii() -> str:
    """All of Fig. 1 in one terminal-friendly blob."""
    from ..circuits.library import bell_pair
    from ..dd.simulator import DDSimulator

    circuit = bell_pair()
    sim = DDSimulator()
    state_dd = sim.simulate_state(circuit)
    vector = state_dd.to_statevector()
    parts = [
        "Fig. 1a — Bell state as a state vector:",
        statevector_table(vector),
        "",
        "Fig. 1b — Bell state as a decision diagram:",
        dd_export.to_ascii(state_dd.edge),
        "",
        f"({state_dd.num_nodes()} nodes vs {len(vector)} vector entries)",
    ]
    return "\n".join(parts)
