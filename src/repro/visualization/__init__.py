"""Rendering helpers for all representations (Fig. 1-3 style output)."""

from .figures import (
    bell_figure_ascii,
    render_dd_dot,
    render_tn_dot,
    render_zx_dot,
    statevector_table,
)

__all__ = [
    "bell_figure_ascii",
    "render_dd_dot",
    "render_tn_dot",
    "render_zx_dot",
    "statevector_table",
]
