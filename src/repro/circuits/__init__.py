"""Quantum circuit intermediate representation and workload generators."""

from . import gates, library, qasm, random_circuits
from .circuit import Operation, QuantumCircuit
from .dag import CircuitDAG, DAGNode
from .gates import Gate

__all__ = [
    "CircuitDAG",
    "DAGNode",
    "Gate",
    "Operation",
    "QuantumCircuit",
    "gates",
    "library",
    "qasm",
    "random_circuits",
]
