"""Gate library: fixed and parameterized quantum gates.

A :class:`Gate` describes the unitary acting on its *target* qubits only.
Control qubits are attached at the :class:`~repro.circuits.circuit.Operation`
level, so ``CX`` is represented as an ``X`` gate with one control.  This keeps
every backend's gate-application primitive uniform: "apply this small unitary
to these targets, conditioned on these controls".

Qubit-ordering convention (shared by the whole library): qubit ``q_{n-1}`` is
the most significant, and a basis index ``i`` carries qubit ``k``'s bit at
position ``k`` (``i = sum_k b_k * 2**k``).  For a multi-target gate acting on
targets ``[t0, t1, ...]``, ``t0`` is the *least* significant target within the
gate's local matrix.
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

_SQRT2_INV = 1.0 / math.sqrt(2.0)


class Gate:
    """An elementary quantum gate.

    Parameters
    ----------
    name:
        Lower-case identifier, e.g. ``"h"`` or ``"rz"``.
    num_qubits:
        Number of *target* qubits the gate's matrix acts on.
    matrix:
        The ``2**num_qubits x 2**num_qubits`` unitary as a numpy array,
        or ``None`` for non-unitary pseudo-gates (measure, barrier).
    params:
        Real parameters (angles) of the gate, empty for fixed gates.
    """

    __slots__ = ("name", "num_qubits", "params", "_matrix")

    def __init__(
        self,
        name: str,
        num_qubits: int,
        matrix: Optional[np.ndarray],
        params: Sequence[float] = (),
    ) -> None:
        self.name = name
        self.num_qubits = num_qubits
        self.params: Tuple[float, ...] = tuple(float(p) for p in params)
        if matrix is not None:
            matrix = np.asarray(matrix, dtype=np.complex128)
            expected = 2**num_qubits
            if matrix.shape != (expected, expected):
                raise ValueError(
                    f"gate '{name}' expects a {expected}x{expected} matrix, "
                    f"got shape {matrix.shape}"
                )
            matrix.setflags(write=False)
        self._matrix = matrix

    @property
    def matrix(self) -> np.ndarray:
        """The gate's unitary over its target qubits (read-only array)."""
        if self._matrix is None:
            raise ValueError(f"gate '{self.name}' has no matrix")
        return self._matrix

    @property
    def has_matrix(self) -> bool:
        return self._matrix is not None

    def inverse(self) -> "Gate":
        """Return the inverse gate (as a named gate where possible)."""
        return _invert_gate(self)

    def is_identity(self, tol: float = 1e-12) -> bool:
        if self._matrix is None:
            return False
        dim = 2**self.num_qubits
        return bool(np.allclose(self._matrix, np.eye(dim), atol=tol))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        if self.name != other.name or self.num_qubits != other.num_qubits:
            return False
        if len(self.params) != len(other.params):
            return False
        return all(
            cmath.isclose(a, b, abs_tol=1e-12) for a, b in zip(self.params, other.params)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.num_qubits, tuple(round(p, 12) for p in self.params)))

    def __repr__(self) -> str:
        if self.params:
            args = ", ".join(f"{p:.6g}" for p in self.params)
            return f"Gate({self.name}({args}), {self.num_qubits}q)"
        return f"Gate({self.name}, {self.num_qubits}q)"


# ---------------------------------------------------------------------------
# Fixed single-qubit gates
# ---------------------------------------------------------------------------

I = Gate("id", 1, np.eye(2))
X = Gate("x", 1, np.array([[0, 1], [1, 0]]))
Y = Gate("y", 1, np.array([[0, -1j], [1j, 0]]))
Z = Gate("z", 1, np.array([[1, 0], [0, -1]]))
H = Gate("h", 1, _SQRT2_INV * np.array([[1, 1], [1, -1]]))
S = Gate("s", 1, np.array([[1, 0], [0, 1j]]))
SDG = Gate("sdg", 1, np.array([[1, 0], [0, -1j]]))
T = Gate("t", 1, np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]]))
TDG = Gate("tdg", 1, np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]]))
SX = Gate("sx", 1, 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]]))
SXDG = Gate("sxdg", 1, 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]]))

# ---------------------------------------------------------------------------
# Fixed two-qubit gates (acting on targets [t0, t1]; t0 least significant)
# ---------------------------------------------------------------------------

SWAP = Gate(
    "swap",
    2,
    np.array(
        [
            [1, 0, 0, 0],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
        ]
    ),
)
ISWAP = Gate(
    "iswap",
    2,
    np.array(
        [
            [1, 0, 0, 0],
            [0, 0, 1j, 0],
            [0, 1j, 0, 0],
            [0, 0, 0, 1],
        ]
    ),
)
ISWAPDG = Gate(
    "iswapdg",
    2,
    np.array(
        [
            [1, 0, 0, 0],
            [0, 0, -1j, 0],
            [0, -1j, 0, 0],
            [0, 0, 0, 1],
        ]
    ),
)

# ---------------------------------------------------------------------------
# Parameterized gates
# ---------------------------------------------------------------------------


def rx(theta: float) -> Gate:
    """Rotation about the X axis by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return Gate("rx", 1, np.array([[c, -1j * s], [-1j * s, c]]), (theta,))


def ry(theta: float) -> Gate:
    """Rotation about the Y axis by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return Gate("ry", 1, np.array([[c, -s], [s, c]]), (theta,))


def rz(theta: float) -> Gate:
    """Rotation about the Z axis by ``theta`` (symmetric phase convention)."""
    e_neg = cmath.exp(-0.5j * theta)
    e_pos = cmath.exp(0.5j * theta)
    return Gate("rz", 1, np.array([[e_neg, 0], [0, e_pos]]), (theta,))


def p(lam: float) -> Gate:
    """Phase gate ``diag(1, e^{i*lam})`` (a.k.a. ``u1``)."""
    return Gate("p", 1, np.array([[1, 0], [0, cmath.exp(1j * lam)]]), (lam,))


def u(theta: float, phi: float, lam: float) -> Gate:
    """Generic single-qubit gate (OpenQASM ``u3`` convention)."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    mat = np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ]
    )
    return Gate("u", 1, mat, (theta, phi, lam))


def u2(phi: float, lam: float) -> Gate:
    """OpenQASM ``u2`` gate: ``u(pi/2, phi, lam)``."""
    mat = _SQRT2_INV * np.array(
        [
            [1, -cmath.exp(1j * lam)],
            [cmath.exp(1j * phi), cmath.exp(1j * (phi + lam))],
        ]
    )
    return Gate("u2", 1, mat, (phi, lam))


def rxx(theta: float) -> Gate:
    """Two-qubit XX interaction ``exp(-i theta/2 X⊗X)``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    mat = np.array(
        [
            [c, 0, 0, -1j * s],
            [0, c, -1j * s, 0],
            [0, -1j * s, c, 0],
            [-1j * s, 0, 0, c],
        ]
    )
    return Gate("rxx", 2, mat, (theta,))


def ryy(theta: float) -> Gate:
    """Two-qubit YY interaction ``exp(-i theta/2 Y⊗Y)``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    mat = np.array(
        [
            [c, 0, 0, 1j * s],
            [0, c, -1j * s, 0],
            [0, -1j * s, c, 0],
            [1j * s, 0, 0, c],
        ]
    )
    return Gate("ryy", 2, mat, (theta,))


def rzz(theta: float) -> Gate:
    """Two-qubit ZZ interaction ``exp(-i theta/2 Z⊗Z)``."""
    e_neg = cmath.exp(-0.5j * theta)
    e_pos = cmath.exp(0.5j * theta)
    return Gate("rzz", 2, np.diag([e_neg, e_pos, e_pos, e_neg]), (theta,))


def gphase(alpha: float) -> Gate:
    """Global phase pseudo-gate acting on zero qubits."""
    return Gate("gphase", 0, np.array([[cmath.exp(1j * alpha)]]), (alpha,))


# ---------------------------------------------------------------------------
# Pseudo-gates (no matrix)
# ---------------------------------------------------------------------------

MEASURE = Gate("measure", 1, None)
BARRIER = Gate("barrier", 0, None)


# ---------------------------------------------------------------------------
# Registries
# ---------------------------------------------------------------------------

FIXED_GATES: Dict[str, Gate] = {
    g.name: g
    for g in (I, X, Y, Z, H, S, SDG, T, TDG, SX, SXDG, SWAP, ISWAP, ISWAPDG)
}

PARAMETRIC_GATES: Dict[str, Callable[..., Gate]] = {
    "rx": rx,
    "ry": ry,
    "rz": rz,
    "p": p,
    "u1": p,
    "u": u,
    "u3": u,
    "u2": u2,
    "rxx": rxx,
    "ryy": ryy,
    "rzz": rzz,
    "gphase": gphase,
}

_SELF_INVERSE = {"id", "x", "y", "z", "h", "swap"}
_INVERSE_PAIRS = {
    "s": "sdg",
    "sdg": "s",
    "t": "tdg",
    "tdg": "t",
    "sx": "sxdg",
    "sxdg": "sx",
    "iswap": "iswapdg",
    "iswapdg": "iswap",
}
# Parametric gates whose inverse is the same gate with all angles negated.
_NEGATE_PARAMS = {"rx", "ry", "rz", "p", "u1", "rxx", "ryy", "rzz", "gphase"}


def _invert_gate(gate: Gate) -> Gate:
    if gate.name in _SELF_INVERSE:
        return gate
    if gate.name in _INVERSE_PAIRS:
        return FIXED_GATES[_INVERSE_PAIRS[gate.name]]
    if gate.name in _NEGATE_PARAMS:
        return PARAMETRIC_GATES[gate.name](*(-p for p in gate.params))
    if gate.name in ("u", "u3"):
        theta, phi, lam = gate.params
        return u(-theta, -lam, -phi)
    if gate.name == "u2":
        phi, lam = gate.params
        return u(-math.pi / 2, -lam, -phi)
    if gate.has_matrix:
        return Gate(gate.name + "_dg", gate.num_qubits, gate.matrix.conj().T)
    raise ValueError(f"gate '{gate.name}' has no inverse")


def make_gate(name: str, params: Sequence[float] = ()) -> Gate:
    """Construct a gate by name, dispatching fixed vs. parametric gates."""
    name = name.lower()
    if name in FIXED_GATES:
        if params:
            raise ValueError(f"gate '{name}' takes no parameters")
        return FIXED_GATES[name]
    if name in PARAMETRIC_GATES:
        return PARAMETRIC_GATES[name](*params)
    raise ValueError(f"unknown gate '{name}'")


def controlled_matrix(matrix: np.ndarray, num_controls: int) -> np.ndarray:
    """Extend ``matrix`` with ``num_controls`` control qubits.

    The controls are the *most significant* qubits of the result; the base
    matrix is applied only on the block where every control bit is 1.
    """
    result = matrix
    for _ in range(num_controls):
        dim = result.shape[0]
        extended = np.eye(2 * dim, dtype=np.complex128)
        extended[dim:, dim:] = result
        result = extended
    return result
