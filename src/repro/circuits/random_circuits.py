"""Random circuit generators used as benchmark workloads.

All generators take an explicit ``seed`` so benchmark workloads are
reproducible run to run.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from .circuit import QuantumCircuit

_CLIFFORD_1Q = ("h", "s", "sdg", "x", "y", "z")
_UNIVERSAL_1Q = ("h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx")


def random_circuit(
    num_qubits: int,
    depth: int,
    seed: int = 0,
    two_qubit_prob: float = 0.5,
) -> QuantumCircuit:
    """Random universal circuit: layers of random rotations and CX gates."""
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits, name=f"random_{num_qubits}x{depth}")
    for _ in range(depth):
        qubits = list(range(num_qubits))
        rng.shuffle(qubits)
        while qubits:
            if len(qubits) >= 2 and rng.random() < two_qubit_prob:
                a, b = qubits.pop(), qubits.pop()
                qc.cx(a, b)
            else:
                q = qubits.pop()
                kind = rng.integers(0, 3)
                angle = float(rng.uniform(0, 2 * math.pi))
                if kind == 0:
                    qc.rx(angle, q)
                elif kind == 1:
                    qc.ry(angle, q)
                else:
                    qc.rz(angle, q)
    return qc


def random_clifford_circuit(
    num_qubits: int, num_gates: int, seed: int = 0
) -> QuantumCircuit:
    """Random circuit over the Clifford gate set {H, S, S†, X, Y, Z, CX, CZ}."""
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits, name=f"clifford_{num_qubits}x{num_gates}")
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < 0.4:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            if rng.random() < 0.5:
                qc.cx(int(a), int(b))
            else:
                qc.cz(int(a), int(b))
        else:
            q = int(rng.integers(0, num_qubits))
            name = _CLIFFORD_1Q[int(rng.integers(0, len(_CLIFFORD_1Q)))]
            getattr(qc, name)(q)
    return qc


def random_clifford_t_circuit(
    num_qubits: int, num_gates: int, seed: int = 0, t_prob: float = 0.2
) -> QuantumCircuit:
    """Random Clifford+T circuit; ``t_prob`` controls the T-gate density."""
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits, name=f"cliffordt_{num_qubits}x{num_gates}")
    for _ in range(num_gates):
        r = rng.random()
        if r < t_prob:
            q = int(rng.integers(0, num_qubits))
            if rng.random() < 0.5:
                qc.t(q)
            else:
                qc.tdg(q)
        elif num_qubits >= 2 and r < t_prob + 0.35:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            qc.cx(int(a), int(b))
        else:
            q = int(rng.integers(0, num_qubits))
            name = _CLIFFORD_1Q[int(rng.integers(0, len(_CLIFFORD_1Q)))]
            getattr(qc, name)(q)
    return qc


def brickwork_circuit(
    num_qubits: int, depth: int, seed: int = 0
) -> QuantumCircuit:
    """Supremacy-style brickwork: random SU(2) layers + staggered CZ bricks.

    This is the low-depth/high-entanglement workload tensor-network
    simulators target (paper Sec. IV).
    """
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits, name=f"brickwork_{num_qubits}x{depth}")
    for layer in range(depth):
        for q in range(num_qubits):
            theta, phi, lam = rng.uniform(0, 2 * math.pi, size=3)
            qc.u(float(theta), float(phi), float(lam), q)
        start = layer % 2
        for q in range(start, num_qubits - 1, 2):
            qc.cz(q, q + 1)
    return qc


def bounded_lightcone_brickwork(
    num_qubits: int,
    depth: int,
    lightcone: int = 4,
    seed: int = 0,
) -> QuantumCircuit:
    """Brickwork whose entangling bricks never cross block boundaries.

    Qubits are partitioned into disjoint blocks of ``lightcone`` wires
    and every CZ stays inside its block, so the entanglement lightcone —
    and with it the MPS bond dimension — is bounded by ``2**(lightcone/2)``
    no matter how wide or deep the circuit grows.  This is the workload
    family where the approximate tier reaches register sizes the exact
    dense path refuses.
    """
    if lightcone < 1:
        raise ValueError("lightcone must be at least 1")
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(
        num_qubits,
        name=f"lightcone_brickwork_{num_qubits}x{depth}w{lightcone}",
    )
    for layer in range(depth):
        for q in range(num_qubits):
            theta, phi, lam = rng.uniform(0, 2 * math.pi, size=3)
            qc.u(float(theta), float(phi), float(lam), q)
        start = layer % 2
        for q in range(start, num_qubits - 1, 2):
            if q // lightcone != (q + 1) // lightcone:
                continue
            qc.cz(q, q + 1)
    return qc


def random_phase_polynomial_terms(
    num_qubits: int, num_terms: int, seed: int = 0
) -> List[tuple]:
    """Random ``(mask, theta)`` terms for phase-polynomial circuits."""
    rng = np.random.default_rng(seed)
    terms = []
    for _ in range(num_terms):
        mask = int(rng.integers(1, 2**num_qubits))
        theta = float(rng.choice([1, 3, 5, 7])) * math.pi / 4
        terms.append((mask, theta))
    return terms
