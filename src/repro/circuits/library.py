"""Constructors for well-known quantum circuits.

These are the workloads used throughout the paper's domain: entangled-state
preparation (Bell/GHZ/W), the quantum Fourier transform, oracle algorithms
(Deutsch-Jozsa, Bernstein-Vazirani, Grover), phase estimation, arithmetic,
and variational ansatz circuits.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from .circuit import QuantumCircuit


def bell_pair() -> QuantumCircuit:
    """The two-qubit Bell circuit from the paper's running example.

    ``H`` on qubit 1 (the most significant qubit, i.e. the paper's first
    qubit) followed by ``CNOT`` controlled on it produces
    ``(|00> + |11>)/sqrt(2)``.
    """
    qc = QuantumCircuit(2, name="bell")
    qc.h(1)
    qc.cx(1, 0)
    return qc


def ghz_state(num_qubits: int) -> QuantumCircuit:
    """GHZ state preparation: H then a CNOT chain."""
    if num_qubits < 1:
        raise ValueError("GHZ needs at least one qubit")
    qc = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    top = num_qubits - 1
    qc.h(top)
    for q in range(top, 0, -1):
        qc.cx(q, q - 1)
    return qc


def w_state(num_qubits: int) -> QuantumCircuit:
    """W state preparation via cascaded controlled rotations.

    Produces ``(|10...0> + |010...0> + ... + |0...01>)/sqrt(n)``.
    """
    if num_qubits < 1:
        raise ValueError("W state needs at least one qubit")
    qc = QuantumCircuit(num_qubits, name=f"w_{num_qubits}")
    top = num_qubits - 1
    qc.x(top)
    for k in range(num_qubits - 1):
        src = top - k
        dst = top - k - 1
        # Rotate amplitude from src onto dst, then re-entangle.
        theta = 2 * math.acos(math.sqrt(1.0 / (num_qubits - k)))
        qc.cry(theta, src, dst)
        qc.cx(dst, src)
    return qc


def qft(num_qubits: int, include_swaps: bool = True) -> QuantumCircuit:
    """Quantum Fourier transform on ``num_qubits`` qubits."""
    qc = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for j in range(num_qubits - 1, -1, -1):
        qc.h(j)
        for k in range(j - 1, -1, -1):
            qc.cp(math.pi / (2 ** (j - k)), k, j)
    if include_swaps:
        for q in range(num_qubits // 2):
            qc.swap(q, num_qubits - 1 - q)
    return qc


def inverse_qft(num_qubits: int, include_swaps: bool = True) -> QuantumCircuit:
    inv = qft(num_qubits, include_swaps).inverse()
    inv.name = f"iqft_{num_qubits}"
    return inv


def deutsch_jozsa(num_qubits: int, balanced_mask: int = 0) -> QuantumCircuit:
    """Deutsch-Jozsa over ``num_qubits`` input qubits plus one ancilla.

    ``balanced_mask == 0`` yields the constant-zero oracle; a nonzero mask
    yields the balanced oracle ``f(x) = parity(x & mask)``.
    """
    n = num_qubits
    qc = QuantumCircuit(n + 1, name=f"dj_{n}")
    anc = n
    qc.x(anc)
    for q in range(n + 1):
        qc.h(q)
    for q in range(n):
        if (balanced_mask >> q) & 1:
            qc.cx(q, anc)
    for q in range(n):
        qc.h(q)
    return qc


def bernstein_vazirani(secret: int, num_qubits: int) -> QuantumCircuit:
    """Bernstein-Vazirani circuit recovering ``secret`` in one query."""
    qc = QuantumCircuit(num_qubits + 1, name=f"bv_{num_qubits}")
    anc = num_qubits
    qc.x(anc)
    for q in range(num_qubits + 1):
        qc.h(q)
    for q in range(num_qubits):
        if (secret >> q) & 1:
            qc.cx(q, anc)
    for q in range(num_qubits):
        qc.h(q)
    return qc


def grover(num_qubits: int, marked: int, iterations: Optional[int] = None) -> QuantumCircuit:
    """Grover search for the basis state ``marked`` over ``num_qubits`` qubits."""
    if not 0 <= marked < 2**num_qubits:
        raise ValueError("marked state out of range")
    if iterations is None:
        iterations = max(1, int(round(math.pi / 4 * math.sqrt(2**num_qubits))))
    qc = QuantumCircuit(num_qubits, name=f"grover_{num_qubits}")
    for q in range(num_qubits):
        qc.h(q)
    for _ in range(iterations):
        _grover_oracle(qc, marked)
        _grover_diffusion(qc)
    return qc


def _grover_oracle(qc: QuantumCircuit, marked: int) -> None:
    n = qc.num_qubits
    zero_positions = [q for q in range(n) if not (marked >> q) & 1]
    for q in zero_positions:
        qc.x(q)
    if n == 1:
        qc.z(0)
    else:
        qc.mcz(list(range(n - 1)), n - 1)
    for q in zero_positions:
        qc.x(q)


def _grover_diffusion(qc: QuantumCircuit) -> None:
    n = qc.num_qubits
    for q in range(n):
        qc.h(q)
        qc.x(q)
    if n == 1:
        qc.z(0)
    else:
        qc.mcz(list(range(n - 1)), n - 1)
    for q in range(n):
        qc.x(q)
        qc.h(q)


def phase_estimation(num_eval_qubits: int, phase: float) -> QuantumCircuit:
    """Quantum phase estimation of ``e^{2*pi*i*phase}`` on one target qubit.

    The target qubit is prepared in |1> (an eigenstate of the phase gate),
    and ``num_eval_qubits`` evaluation qubits hold the binary expansion of
    ``phase`` after the inverse QFT.
    """
    n = num_eval_qubits
    qc = QuantumCircuit(n + 1, name=f"qpe_{n}")
    target = n
    qc.x(target)
    for q in range(n):
        qc.h(q)
    for q in range(n):
        angle = 2 * math.pi * phase * (2**q)
        qc.cp(angle, q, target)
    iqft_circ = inverse_qft(n)
    qc.compose(iqft_circ, qubits=list(range(n)))
    return qc


def cuccaro_adder(num_bits: int) -> QuantumCircuit:
    """Cuccaro ripple-carry adder: ``|a>|b> -> |a>|a+b>`` plus a carry.

    Register layout: qubits ``0..num_bits-1`` hold ``a``, qubits
    ``num_bits..2*num_bits-1`` hold ``b``, qubit ``2*num_bits`` is the
    incoming ancilla (|0>), qubit ``2*num_bits+1`` receives the carry-out.
    """
    n = num_bits
    qc = QuantumCircuit(2 * n + 2, name=f"adder_{n}")
    a = list(range(n))
    b = list(range(n, 2 * n))
    anc = 2 * n
    carry = 2 * n + 1

    def maj(x: int, y: int, z: int) -> None:
        qc.cx(z, y)
        qc.cx(z, x)
        qc.ccx(x, y, z)

    def uma(x: int, y: int, z: int) -> None:
        qc.ccx(x, y, z)
        qc.cx(z, x)
        qc.cx(x, y)

    maj(anc, b[0], a[0])
    for i in range(1, n):
        maj(a[i - 1], b[i], a[i])
    qc.cx(a[n - 1], carry)
    for i in range(n - 1, 0, -1):
        uma(a[i - 1], b[i], a[i])
    uma(anc, b[0], a[0])
    return qc


def hardware_efficient_ansatz(
    num_qubits: int, depth: int, parameters: Sequence[float]
) -> QuantumCircuit:
    """Two-local VQE-style ansatz: RY/RZ layers with a CX entangler ladder.

    Needs ``2 * num_qubits * (depth + 1)`` parameters.
    """
    needed = 2 * num_qubits * (depth + 1)
    if len(parameters) != needed:
        raise ValueError(f"ansatz needs {needed} parameters, got {len(parameters)}")
    qc = QuantumCircuit(num_qubits, name=f"ansatz_{num_qubits}x{depth}")
    it = iter(parameters)
    for layer in range(depth + 1):
        for q in range(num_qubits):
            qc.ry(next(it), q)
        for q in range(num_qubits):
            qc.rz(next(it), q)
        if layer < depth:
            for q in range(num_qubits - 1):
                qc.cx(q, q + 1)
    return qc


def phase_polynomial_circuit(
    num_qubits: int, terms: Sequence[tuple], name: str = "phasepoly"
) -> QuantumCircuit:
    """CNOT+RZ circuit realizing ``sum_j theta_j * parity(x & mask_j)`` phases.

    ``terms`` is a sequence of ``(mask, theta)`` pairs; each term is compiled
    as a CNOT ladder onto the lowest set qubit, an RZ, and the unwound ladder.
    This is the phase-polynomial circuit class the ZX-calculus literature
    targets (paper Sec. V).
    """
    qc = QuantumCircuit(num_qubits, name=name)
    for mask, theta in terms:
        qubits = [q for q in range(num_qubits) if (mask >> q) & 1]
        if not qubits:
            qc.gphase(theta)
            continue
        pivot = qubits[0]
        for q in qubits[1:]:
            qc.cx(q, pivot)
        qc.rz(theta, pivot)
        for q in reversed(qubits[1:]):
            qc.cx(q, pivot)
    return qc


def qaoa_maxcut(
    edges: Sequence[tuple],
    gammas: Sequence[float],
    betas: Sequence[float],
    num_qubits: Optional[int] = None,
) -> QuantumCircuit:
    """QAOA ansatz for MaxCut on the given graph.

    One vertex per qubit; each layer applies ``Rzz(2*gamma)`` per edge (the
    cost Hamiltonian) followed by ``Rx(2*beta)`` mixers.
    """
    if len(gammas) != len(betas):
        raise ValueError("need one beta per gamma (one pair per layer)")
    if num_qubits is None:
        num_qubits = max(max(a, b) for a, b in edges) + 1
    qc = QuantumCircuit(num_qubits, name=f"qaoa_{num_qubits}x{len(gammas)}")
    for q in range(num_qubits):
        qc.h(q)
    for gamma, beta in zip(gammas, betas):
        for a, b in edges:
            qc.rzz(2 * gamma, a, b)
        for q in range(num_qubits):
            qc.rx(2 * beta, q)
    return qc


def quantum_volume_circuit(num_qubits: int, depth: int, seed: int = 0) -> QuantumCircuit:
    """Quantum-volume-style model circuit: layers of random SU(4) blocks.

    Each layer randomly pairs the qubits and applies a Haar-ish random
    two-qubit unitary (as a named ``unitary2q`` gate) to every pair.
    """
    import numpy as np

    from . import gates as _g

    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits, name=f"qv_{num_qubits}x{depth}")
    for _ in range(depth):
        order = list(range(num_qubits))
        rng.shuffle(order)
        for i in range(0, num_qubits - 1, 2):
            a, b = order[i], order[i + 1]
            raw = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
            q, r = np.linalg.qr(raw)
            q = q * (np.diag(r) / np.abs(np.diag(r)))
            qc.add_gate(_g.Gate("unitary2q", 2, q), [a, b])
    return qc


def teleportation(theta: float = 0.6, phi: float = 1.1) -> QuantumCircuit:
    """Quantum teleportation with measurement feed-forward.

    Qubit 0 is prepared in ``Ry(theta) Rz(phi)|0>`` and teleported to qubit
    2 through a Bell pair on qubits 1-2.  The classically-controlled X/Z
    corrections make the protocol deterministic: qubit 2 always ends in the
    prepared state, whatever the two measurement outcomes were.
    """
    from . import gates as _g

    qc = QuantumCircuit(3, name="teleport")
    # State preparation on the message qubit.
    qc.ry(theta, 0)
    qc.rz(phi, 0)
    # Bell pair between Alice's ancilla (1) and Bob (2).
    qc.h(1)
    qc.cx(1, 2)
    # Bell measurement on qubits 0 and 1.
    qc.cx(0, 1)
    qc.h(0)
    qc.measure(0, 0)
    qc.measure(1, 1)
    # Feed-forward corrections on Bob's qubit.
    qc.conditional(_g.X, [2], clbit=1, value=1)
    qc.conditional(_g.Z, [2], clbit=0, value=1)
    return qc


def hidden_shift(num_qubits: int, shift: int) -> QuantumCircuit:
    """A Clifford hidden-shift-style circuit (bent-function variant).

    Uses a CZ-ladder inner function; useful as a structured Clifford
    workload for the ZX simplification benchmarks.
    """
    if num_qubits % 2 != 0:
        raise ValueError("hidden shift needs an even number of qubits")
    qc = QuantumCircuit(num_qubits, name=f"hiddenshift_{num_qubits}")
    half = num_qubits // 2
    for q in range(num_qubits):
        qc.h(q)
    for q in range(num_qubits):
        if (shift >> q) & 1:
            qc.z(q)
    for q in range(half):
        qc.cz(q, q + half)
    for q in range(num_qubits):
        qc.h(q)
    for q in range(half):
        qc.cz(q, q + half)
    for q in range(num_qubits):
        qc.h(q)
    return qc
