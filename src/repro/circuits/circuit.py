"""Quantum circuit intermediate representation.

A :class:`QuantumCircuit` is an ordered list of :class:`Operation` objects
over ``num_qubits`` qubits.  Every backend in this library (arrays, decision
diagrams, tensor networks, ZX-calculus) consumes this IR.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from . import gates as g
from .gates import Gate


class Operation:
    """A gate application: ``gate`` on ``targets``, conditioned on ``controls``.

    ``controls`` are positive controls (the gate fires when every control
    qubit is |1>).  ``clbits`` is only used by measure operations.
    ``condition`` makes the operation classically controlled: a
    ``(clbit, value)`` pair — the gate fires only when the classical bit
    holds ``value`` at execution time (teleportation-style feed-forward).
    """

    __slots__ = ("gate", "targets", "controls", "clbits", "condition")

    def __init__(
        self,
        gate: Gate,
        targets: Sequence[int],
        controls: Sequence[int] = (),
        clbits: Sequence[int] = (),
        condition: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.gate = gate
        self.targets: Tuple[int, ...] = tuple(targets)
        self.controls: Tuple[int, ...] = tuple(controls)
        self.clbits: Tuple[int, ...] = tuple(clbits)
        self.condition = condition
        if gate.has_matrix and len(self.targets) != gate.num_qubits:
            raise ValueError(
                f"gate '{gate.name}' acts on {gate.num_qubits} qubits, "
                f"got targets {self.targets}"
            )
        all_qubits = self.targets + self.controls
        if len(set(all_qubits)) != len(all_qubits):
            raise ValueError(f"duplicate qubits in operation: {all_qubits}")

    @property
    def qubits(self) -> Tuple[int, ...]:
        """All qubits touched by this operation (targets then controls)."""
        return self.targets + self.controls

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def is_measurement(self) -> bool:
        return self.gate.name == "measure"

    @property
    def is_barrier(self) -> bool:
        return self.gate.name == "barrier"

    @property
    def is_unitary(self) -> bool:
        return self.gate.has_matrix

    def inverse(self) -> "Operation":
        if not self.is_unitary:
            raise ValueError(f"operation '{self.gate.name}' is not invertible")
        return Operation(
            self.gate.inverse(), self.targets, self.controls,
            condition=self.condition,
        )

    def remapped(self, mapping: Dict[int, int]) -> "Operation":
        """Return a copy with qubits renamed through ``mapping``."""
        return Operation(
            self.gate,
            [mapping[q] for q in self.targets],
            [mapping[q] for q in self.controls],
            self.clbits,
            condition=self.condition,
        )

    def name_with_controls(self) -> str:
        """Display name, e.g. ``cx`` for a controlled ``x``."""
        return "c" * len(self.controls) + self.gate.name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operation):
            return NotImplemented
        return (
            self.gate == other.gate
            and self.targets == other.targets
            and set(self.controls) == set(other.controls)
            and self.clbits == other.clbits
            and self.condition == other.condition
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.gate,
                self.targets,
                frozenset(self.controls),
                self.clbits,
                self.condition,
            )
        )

    def __repr__(self) -> str:
        parts = [f"{self.gate!r} targets={self.targets}"]
        if self.controls:
            parts.append(f"controls={self.controls}")
        if self.clbits:
            parts.append(f"clbits={self.clbits}")
        if self.condition is not None:
            parts.append(f"if c{self.condition[0]}=={self.condition[1]}")
        return f"Operation({', '.join(parts)})"


class QuantumCircuit:
    """An ordered sequence of operations over a fixed qubit register."""

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        self.num_qubits = num_qubits
        self.name = name
        self.operations: List[Operation] = []
        self.num_clbits = 0

    # -- construction -------------------------------------------------------

    def append(self, op: Operation) -> "QuantumCircuit":
        for q in op.qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(
                    f"qubit {q} out of range for {self.num_qubits}-qubit circuit"
                )
        self.operations.append(op)
        return self

    def add_gate(
        self,
        gate: Gate,
        targets: Sequence[int],
        controls: Sequence[int] = (),
    ) -> "QuantumCircuit":
        return self.append(Operation(gate, targets, controls))

    def conditional(
        self,
        gate: Gate,
        targets: Sequence[int],
        clbit: int,
        value: int = 1,
        controls: Sequence[int] = (),
    ) -> "QuantumCircuit":
        """Append a classically-controlled gate (feed-forward)."""
        self.num_clbits = max(self.num_clbits, clbit + 1)
        return self.append(
            Operation(gate, targets, controls, condition=(clbit, value))
        )

    # Single-qubit fixed gates.

    def i(self, q: int) -> "QuantumCircuit":
        return self.add_gate(g.I, [q])

    def x(self, q: int) -> "QuantumCircuit":
        return self.add_gate(g.X, [q])

    def y(self, q: int) -> "QuantumCircuit":
        return self.add_gate(g.Y, [q])

    def z(self, q: int) -> "QuantumCircuit":
        return self.add_gate(g.Z, [q])

    def h(self, q: int) -> "QuantumCircuit":
        return self.add_gate(g.H, [q])

    def s(self, q: int) -> "QuantumCircuit":
        return self.add_gate(g.S, [q])

    def sdg(self, q: int) -> "QuantumCircuit":
        return self.add_gate(g.SDG, [q])

    def t(self, q: int) -> "QuantumCircuit":
        return self.add_gate(g.T, [q])

    def tdg(self, q: int) -> "QuantumCircuit":
        return self.add_gate(g.TDG, [q])

    def sx(self, q: int) -> "QuantumCircuit":
        return self.add_gate(g.SX, [q])

    def sxdg(self, q: int) -> "QuantumCircuit":
        return self.add_gate(g.SXDG, [q])

    # Single-qubit parameterized gates.

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add_gate(g.rx(theta), [q])

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add_gate(g.ry(theta), [q])

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add_gate(g.rz(theta), [q])

    def p(self, lam: float, q: int) -> "QuantumCircuit":
        return self.add_gate(g.p(lam), [q])

    def u(self, theta: float, phi: float, lam: float, q: int) -> "QuantumCircuit":
        return self.add_gate(g.u(theta, phi, lam), [q])

    # Controlled gates.

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.add_gate(g.X, [target], [control])

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        return self.add_gate(g.Y, [target], [control])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.add_gate(g.Z, [target], [control])

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        return self.add_gate(g.H, [target], [control])

    def cs(self, control: int, target: int) -> "QuantumCircuit":
        return self.add_gate(g.S, [target], [control])

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        return self.add_gate(g.p(lam), [target], [control])

    def crx(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.add_gate(g.rx(theta), [target], [control])

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.add_gate(g.ry(theta), [target], [control])

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.add_gate(g.rz(theta), [target], [control])

    def ccx(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self.add_gate(g.X, [target], [c1, c2])

    def ccz(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self.add_gate(g.Z, [target], [c1, c2])

    def mcx(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        return self.add_gate(g.X, [target], controls)

    def mcz(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        return self.add_gate(g.Z, [target], controls)

    def mcp(self, lam: float, controls: Sequence[int], target: int) -> "QuantumCircuit":
        return self.add_gate(g.p(lam), [target], controls)

    # Two-qubit gates.

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.add_gate(g.SWAP, [a, b])

    def iswap(self, a: int, b: int) -> "QuantumCircuit":
        return self.add_gate(g.ISWAP, [a, b])

    def cswap(self, control: int, a: int, b: int) -> "QuantumCircuit":
        return self.add_gate(g.SWAP, [a, b], [control])

    def rxx(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add_gate(g.rxx(theta), [a, b])

    def ryy(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add_gate(g.ryy(theta), [a, b])

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add_gate(g.rzz(theta), [a, b])

    def gphase(self, alpha: float) -> "QuantumCircuit":
        return self.add_gate(g.gphase(alpha), [])

    # Pseudo-operations.

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        return self.append(Operation(g.BARRIER, [], list(qubits) if qubits else []))

    def measure(self, qubit: int, clbit: Optional[int] = None) -> "QuantumCircuit":
        if clbit is None:
            clbit = qubit
        self.num_clbits = max(self.num_clbits, clbit + 1)
        return self.append(Operation(g.MEASURE, [qubit], clbits=[clbit]))

    def measure_all(self) -> "QuantumCircuit":
        for q in range(self.num_qubits):
            self.measure(q, q)
        return self

    # -- combination --------------------------------------------------------

    def compose(
        self, other: "QuantumCircuit", qubits: Optional[Sequence[int]] = None
    ) -> "QuantumCircuit":
        """Append ``other``'s operations in place; optional qubit relabeling."""
        if qubits is None:
            if other.num_qubits > self.num_qubits:
                raise ValueError("composed circuit has more qubits than target")
            mapping = {q: q for q in range(other.num_qubits)}
        else:
            if len(qubits) != other.num_qubits:
                raise ValueError("qubit mapping length mismatch")
            mapping = {i: q for i, q in enumerate(qubits)}
        for op in other.operations:
            self.append(op.remapped(mapping))
        self.num_clbits = max(self.num_clbits, other.num_clbits)
        return self

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit (reversed order, inverted gates)."""
        inv = QuantumCircuit(self.num_qubits, name=self.name + "_dg")
        for op in reversed(self.operations):
            if op.is_barrier:
                inv.append(op)
            else:
                inv.append(op.inverse())
        return inv

    def copy(self) -> "QuantumCircuit":
        dup = QuantumCircuit(self.num_qubits, name=self.name)
        dup.operations = list(self.operations)
        dup.num_clbits = self.num_clbits
        return dup

    def remapped(self, mapping: Dict[int, int], num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Return a copy with all qubits renamed through ``mapping``."""
        out = QuantumCircuit(num_qubits or self.num_qubits, name=self.name)
        for op in self.operations:
            out.append(op.remapped(mapping))
        out.num_clbits = self.num_clbits
        return out

    def without_measurements(self) -> "QuantumCircuit":
        """Copy without measurements, barriers, and feed-forward operations.

        Classically-conditioned gates depend on measurement outcomes, so
        they are dropped along with the measurements themselves.
        """
        out = QuantumCircuit(self.num_qubits, name=self.name)
        out.operations = [
            op
            for op in self.operations
            if not (op.is_measurement or op.is_barrier)
            and op.condition is None
        ]
        return out

    # -- inspection ---------------------------------------------------------

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    def count_ops(self) -> Dict[str, int]:
        """Histogram of operation display names (``cx``, ``h``, ...)."""
        counts: Dict[str, int] = {}
        for op in self.operations:
            key = op.name_with_controls()
            counts[key] = counts.get(key, 0) + 1
        return counts

    def num_unitary_ops(self) -> int:
        return sum(1 for op in self.operations if op.is_unitary)

    def two_qubit_gate_count(self) -> int:
        """Number of unitary operations touching two or more qubits."""
        return sum(1 for op in self.operations if op.is_unitary and op.num_qubits >= 2)

    def t_count(self) -> int:
        """Number of T/T-dagger gates (uncontrolled)."""
        return sum(
            1
            for op in self.operations
            if op.gate.name in ("t", "tdg") and not op.controls
        )

    def depth(self) -> int:
        """Circuit depth over unitary operations (barriers force layering)."""
        level: Dict[int, int] = {q: 0 for q in range(self.num_qubits)}
        depth = 0
        for op in self.operations:
            if op.is_barrier:
                qubits: Iterable[int] = op.qubits if op.qubits else range(self.num_qubits)
                top = max((level[q] for q in qubits), default=0)
                for q in qubits:
                    level[q] = top
                continue
            qubits = op.qubits
            if not qubits:
                # Zero-qubit operations (global phase) occupy no wire.
                continue
            layer = max(level[q] for q in qubits) + 1
            for q in qubits:
                level[q] = layer
            depth = max(depth, layer)
        return depth

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"ops={len(self.operations)})"
        )

    def draw(self) -> str:
        """A plain-text summary listing of the circuit."""
        lines = [f"{self.name}: {self.num_qubits} qubits, {len(self)} ops"]
        for idx, op in enumerate(self.operations):
            label = op.name_with_controls()
            if op.gate.params:
                label += "(" + ", ".join(f"{p:.4g}" for p in op.gate.params) + ")"
            wires = ", ".join(
                [f"c{q}" for q in op.controls] + [f"q{q}" for q in op.targets]
            )
            lines.append(f"  {idx:4d}: {label} {wires}")
        return "\n".join(lines)


def bit_reversal_permutation(num_qubits: int) -> List[int]:
    """Mapping that reverses qubit significance (used by QFT constructions)."""
    return list(reversed(range(num_qubits)))
