"""Dependency-DAG view of a circuit.

Gates become nodes; edges are data dependencies through shared qubits (and
classical bits).  The DAG yields ASAP layering (parallel depth), critical
paths, and — with ``commutation_aware=True`` — a tighter schedule where
gates that provably commute do not constrain each other.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .circuit import Operation, QuantumCircuit


class DAGNode:
    __slots__ = ("index", "op", "predecessors", "successors")

    def __init__(self, index: int, op: Operation) -> None:
        self.index = index
        self.op = op
        self.predecessors: Set[int] = set()
        self.successors: Set[int] = set()

    def __repr__(self) -> str:
        return f"DAGNode({self.index}, {self.op.name_with_controls()})"


class CircuitDAG:
    """A circuit as a directed acyclic dependency graph."""

    def __init__(self, num_qubits: int, nodes: List[DAGNode]) -> None:
        self.num_qubits = num_qubits
        self.nodes = nodes

    @classmethod
    def from_circuit(
        cls, circuit: QuantumCircuit, commutation_aware: bool = False
    ) -> "CircuitDAG":
        """Build the DAG; optionally drop edges between commuting gates.

        In commutation-aware mode a new gate depends on a previous gate on a
        shared wire only if the two do *not* commute — checked exactly on
        their joint support.  Measurements, barriers, and conditioned gates
        always act as hard dependencies on their wires.
        """
        if commutation_aware:
            from ..compile.commutation import operations_commute
        nodes = [DAGNode(i, op) for i, op in enumerate(circuit.operations)]

        def wires(op: Operation) -> Tuple[int, ...]:
            if op.is_barrier and not op.qubits:
                return tuple(range(circuit.num_qubits))
            return op.qubits

        # history_on_wire[q]: every previous op touching wire q.  Two ops
        # may run in either order only if they commute pairwise, so a new op
        # must be checked against the *full* history of its wires — pruning
        # "already blocked" entries is unsound (commutation is not
        # transitive: C may commute with B but not with an earlier A that B
        # already blocked).
        history_on_wire: Dict[int, List[int]] = {
            q: [] for q in range(circuit.num_qubits)
        }
        clbit_last: Dict[int, int] = {}
        for node in nodes:
            op = node.op
            hard = (
                op.is_barrier
                or op.is_measurement
                or op.condition is not None
                or not commutation_aware
            )
            for q in wires(op):
                history = history_on_wire[q]
                if hard:
                    if not commutation_aware:
                        # Plain mode: the last op on the wire suffices
                        # (dependencies chain transitively).
                        if history:
                            node.predecessors.add(history[-1])
                    else:
                        for prev in history:
                            node.predecessors.add(prev)
                else:
                    for prev in history:
                        prev_op = nodes[prev].op
                        blocking = (
                            prev_op.is_barrier
                            or prev_op.is_measurement
                            or prev_op.condition is not None
                            or not operations_commute(op, prev_op)
                        )
                        if blocking:
                            node.predecessors.add(prev)
                history.append(node.index)
            # Classical dependencies: measure writes, condition reads.
            if op.is_measurement and op.clbits:
                clbit = op.clbits[0]
                if clbit in clbit_last:
                    node.predecessors.add(clbit_last[clbit])
                clbit_last[clbit] = node.index
            if op.condition is not None:
                clbit = op.condition[0]
                if clbit in clbit_last:
                    node.predecessors.add(clbit_last[clbit])
        for node in nodes:
            node.predecessors.discard(node.index)
            for prev in node.predecessors:
                nodes[prev].successors.add(node.index)
        return cls(circuit.num_qubits, nodes)

    # -- scheduling ------------------------------------------------------------

    def asap_levels(self) -> List[int]:
        """Earliest layer of every node (longest path from the inputs)."""
        levels = [0] * len(self.nodes)
        for node in self.nodes:  # construction order is topological
            if node.predecessors:
                levels[node.index] = 1 + max(
                    levels[p] for p in node.predecessors
                )
        return levels

    def layers(self) -> List[List[int]]:
        """ASAP layering: lists of node indices executable in parallel."""
        levels = self.asap_levels()
        if not levels:
            return []
        result: List[List[int]] = [[] for _ in range(max(levels) + 1)]
        for index, level in enumerate(levels):
            result[level].append(index)
        return result

    def depth(self) -> int:
        levels = self.asap_levels()
        return max(levels) + 1 if levels else 0

    def critical_path(self) -> List[int]:
        """One longest dependency chain (node indices, input to output)."""
        if not self.nodes:
            return []
        levels = self.asap_levels()
        index = max(range(len(self.nodes)), key=lambda i: levels[i])
        path = [index]
        while self.nodes[index].predecessors:
            index = max(
                self.nodes[index].predecessors, key=lambda p: levels[p]
            )
            path.append(index)
        path.reverse()
        return path

    def parallelism(self) -> float:
        """Average gates per layer — how wide the circuit runs."""
        depth = self.depth()
        return len(self.nodes) / depth if depth else 0.0

    # -- conversion -------------------------------------------------------------

    def to_circuit(self, name: str = "dag") -> QuantumCircuit:
        """Rebuild a circuit in a valid topological (layered) order."""
        circuit = QuantumCircuit(self.num_qubits, name=name)
        for layer in self.layers():
            for index in layer:
                circuit.append(self.nodes[index].op)
        num_clbits = max(
            (op.clbits[0] + 1 for op in circuit.operations if op.clbits),
            default=0,
        )
        circuit.num_clbits = max(circuit.num_clbits, num_clbits)
        return circuit

    def __repr__(self) -> str:
        return (
            f"CircuitDAG({len(self.nodes)} nodes, depth {self.depth()}, "
            f"parallelism {self.parallelism():.2f})"
        )
