"""OpenQASM 2.0 subset reader and writer.

Supported statements: the ``OPENQASM``/``include`` headers, a single
``qreg``/``creg`` pair (or several, concatenated in declaration order),
standard-library gate applications, ``measure`` and ``barrier``.  Angle
expressions support ``pi``, numeric literals, ``+ - * /``, unary minus and
parentheses.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from . import gates as g
from .circuit import Operation, QuantumCircuit


class QasmError(ValueError):
    """Raised on malformed OpenQASM input."""


# ---------------------------------------------------------------------------
# Angle expression evaluation (tiny recursive-descent parser)
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+|\d+|[A-Za-z_][A-Za-z0-9_]*|[()+\-*/])"
)


def _tokenize_expr(text: str) -> List[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QasmError(f"bad angle expression: {text!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


def evaluate_angle(text: str, variables: Optional[Dict[str, float]] = None) -> float:
    """Evaluate an OpenQASM angle expression such as ``-pi/4`` or ``3*pi/8``.

    ``variables`` supplies values for formal gate parameters appearing in
    custom gate bodies.
    """
    variables = variables or {}
    tokens = _tokenize_expr(text)
    pos = 0

    def peek() -> str:
        return tokens[pos] if pos < len(tokens) else ""

    def advance() -> str:
        nonlocal pos
        tok = tokens[pos]
        pos += 1
        return tok

    def parse_atom() -> float:
        tok = peek()
        if tok == "(":
            advance()
            value = parse_sum()
            if peek() != ")":
                raise QasmError(f"unbalanced parentheses in {text!r}")
            advance()
            return value
        if tok == "-":
            advance()
            return -parse_atom()
        if tok == "+":
            advance()
            return parse_atom()
        if tok == "pi":
            advance()
            return math.pi
        if tok and (tok[0].isalpha() or tok[0] == "_"):
            if tok in variables:
                advance()
                return variables[tok]
            raise QasmError(f"unknown identifier {tok!r} in angle expression")
        if tok == "":
            raise QasmError(f"truncated angle expression: {text!r}")
        advance()
        return float(tok)

    def parse_product() -> float:
        value = parse_atom()
        while peek() in ("*", "/"):
            op = advance()
            rhs = parse_atom()
            value = value * rhs if op == "*" else value / rhs
        return value

    def parse_sum() -> float:
        value = parse_product()
        while peek() in ("+", "-"):
            op = advance()
            rhs = parse_product()
            value = value + rhs if op == "+" else value - rhs
        return value

    result = parse_sum()
    if pos != len(tokens):
        raise QasmError(f"trailing tokens in angle expression: {text!r}")
    return result


# ---------------------------------------------------------------------------
# Gate-name translation tables
# ---------------------------------------------------------------------------

# QASM name -> (base gate name, #controls, #params).  The base gate acts on
# the trailing qubits of the argument list; leading qubits are controls.
_QASM_GATES: Dict[str, Tuple[str, int, int]] = {
    "id": ("id", 0, 0),
    "x": ("x", 0, 0),
    "y": ("y", 0, 0),
    "z": ("z", 0, 0),
    "h": ("h", 0, 0),
    "s": ("s", 0, 0),
    "sdg": ("sdg", 0, 0),
    "t": ("t", 0, 0),
    "tdg": ("tdg", 0, 0),
    "sx": ("sx", 0, 0),
    "sxdg": ("sxdg", 0, 0),
    "rx": ("rx", 0, 1),
    "ry": ("ry", 0, 1),
    "rz": ("rz", 0, 1),
    "p": ("p", 0, 1),
    "u1": ("p", 0, 1),
    "u2": ("u2", 0, 2),
    "u3": ("u", 0, 3),
    "u": ("u", 0, 3),
    "cx": ("x", 1, 0),
    "CX": ("x", 1, 0),
    "cy": ("y", 1, 0),
    "cz": ("z", 1, 0),
    "ch": ("h", 1, 0),
    "cs": ("s", 1, 0),
    "csdg": ("sdg", 1, 0),
    "cp": ("p", 1, 1),
    "cu1": ("p", 1, 1),
    "crx": ("rx", 1, 1),
    "cry": ("ry", 1, 1),
    "crz": ("rz", 1, 1),
    "ccx": ("x", 2, 0),
    "ccz": ("z", 2, 0),
    "swap": ("swap", 0, 0),
    "iswap": ("iswap", 0, 0),
    "cswap": ("swap", 1, 0),
    "rxx": ("rxx", 0, 1),
    "ryy": ("ryy", 0, 1),
    "rzz": ("rzz", 0, 1),
}

# (base gate name, #controls) -> QASM name, for the writer.
_TO_QASM: Dict[Tuple[str, int], str] = {}
for qasm_name, (base, nctrl, _nparam) in _QASM_GATES.items():
    key = (base, nctrl)
    if key not in _TO_QASM and qasm_name not in ("CX", "u3", "u1"):
        _TO_QASM[key] = qasm_name


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------

_STMT_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"(?:\((?P<params>[^)]*)\))?\s*"
    r"(?P<args>[^;]*)$"
)
_ARG_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\[(\d+)\]$")


_GATE_DEF_RE = re.compile(
    r"gate\s+([A-Za-z_][A-Za-z0-9_]*)\s*"
    r"(?:\(([^)]*)\))?\s*"
    r"([^{]*)\{([^}]*)\}"
)


def _parse_gate_definitions(text: str):
    """Extract ``gate name(params) qubits { body }`` macros from the source.

    Returns ``(remaining_text, definitions)`` where each definition maps the
    gate name to ``(param_names, qubit_names, body_statements)``.
    """
    definitions = {}

    def record(match: "re.Match") -> str:
        name = match.group(1)
        params = [
            p.strip() for p in (match.group(2) or "").split(",") if p.strip()
        ]
        qubits = [
            q.strip() for q in match.group(3).split(",") if q.strip()
        ]
        if not qubits:
            raise QasmError(f"gate definition '{name}' declares no qubits")
        body = [s.strip() for s in match.group(4).split(";") if s.strip()]
        definitions[name] = (params, qubits, body)
        return " "

    remaining = _GATE_DEF_RE.sub(record, text)
    return remaining, definitions


def loads(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 source into a :class:`QuantumCircuit`.

    Supports user ``gate`` definitions: bodies may use the standard library
    and previously-defined gates; formal parameters may appear inside angle
    expressions.
    """
    # Strip comments, pull out gate macros, split on semicolons.
    text = re.sub(r"//[^\n]*", "", text)
    text = text.replace("\n", " ")
    text, definitions = _parse_gate_definitions(text)
    statements = [s.strip() for s in text.split(";")]
    statements = [s for s in statements if s]

    qreg_offsets: Dict[str, int] = {}
    creg_offsets: Dict[str, int] = {}
    num_qubits = 0
    num_clbits = 0
    ops: List[Operation] = []

    def resolve(arg: str, offsets: Dict[str, int]) -> int:
        match = _ARG_RE.match(arg)
        if match is None:
            raise QasmError(f"cannot parse register argument {arg!r}")
        reg, idx = match.group(1), int(match.group(2))
        if reg not in offsets:
            raise QasmError(f"unknown register {reg!r}")
        return offsets[reg] + idx

    for stmt in statements:
        if stmt.startswith("OPENQASM") or stmt.startswith("include"):
            continue
        if stmt.startswith("qreg") or stmt.startswith("creg"):
            match = re.match(r"^[qc]reg\s+([A-Za-z_][A-Za-z0-9_]*)\[(\d+)\]$", stmt)
            if match is None:
                raise QasmError(f"cannot parse register declaration {stmt!r}")
            name, size = match.group(1), int(match.group(2))
            if stmt.startswith("qreg"):
                qreg_offsets[name] = num_qubits
                num_qubits += size
            else:
                creg_offsets[name] = num_clbits
                num_clbits += size
            continue
        if stmt.startswith("measure"):
            match = re.match(r"^measure\s+(\S+)\s*->\s*(\S+)$", stmt)
            if match is None:
                raise QasmError(f"cannot parse measure statement {stmt!r}")
            qubit = resolve(match.group(1), qreg_offsets)
            clbit = resolve(match.group(2), creg_offsets)
            ops.append(Operation(g.MEASURE, [qubit], clbits=[clbit]))
            continue
        if stmt.startswith("barrier"):
            args = stmt[len("barrier"):].strip()
            qubits = []
            if args:
                for arg in args.split(","):
                    arg = arg.strip()
                    if _ARG_RE.match(arg):
                        qubits.append(resolve(arg, qreg_offsets))
                    elif arg in qreg_offsets:
                        # Whole-register barrier: covered by the empty list.
                        qubits = []
                        break
            ops.append(Operation(g.BARRIER, [], qubits))
            continue

        match = _STMT_RE.match(stmt)
        if match is None:
            raise QasmError(f"cannot parse statement {stmt!r}")
        name = match.group("name")
        param_text = match.group("params")
        param_values = []
        if param_text:
            param_values = [
                evaluate_angle(piece) for piece in param_text.split(",")
            ]
        args = [a.strip() for a in match.group("args").split(",") if a.strip()]
        qubits = [resolve(a, qreg_offsets) for a in args]
        _emit_application(name, param_values, qubits, definitions, ops, depth=0)

    qc = QuantumCircuit(num_qubits, name="qasm")
    qc.num_clbits = num_clbits
    for op in ops:
        qc.append(op)
    return qc


def _emit_application(
    name: str,
    param_values: List[float],
    qubits: List[int],
    definitions: Dict,
    ops: List[Operation],
    depth: int,
) -> None:
    """Append the operations of one gate application (expanding macros)."""
    if depth > 64:
        raise QasmError(f"gate definition recursion too deep at {name!r}")
    if name in _QASM_GATES:
        base_name, nctrl, nparam = _QASM_GATES[name]
        if len(param_values) != nparam:
            raise QasmError(
                f"gate {name!r} expects {nparam} parameters, "
                f"got {len(param_values)}"
            )
        gate = g.make_gate(base_name, param_values)
        expected = nctrl + gate.num_qubits
        if len(qubits) != expected:
            raise QasmError(
                f"gate {name!r} expects {expected} qubits, got {len(qubits)}"
            )
        ops.append(Operation(gate, qubits[nctrl:], qubits[:nctrl]))
        return
    if name in definitions:
        formal_params, formal_qubits, body = definitions[name]
        if len(param_values) != len(formal_params):
            raise QasmError(
                f"gate {name!r} expects {len(formal_params)} parameters, "
                f"got {len(param_values)}"
            )
        if len(qubits) != len(formal_qubits):
            raise QasmError(
                f"gate {name!r} expects {len(formal_qubits)} qubits, "
                f"got {len(qubits)}"
            )
        variables = dict(zip(formal_params, param_values))
        qubit_bindings = dict(zip(formal_qubits, qubits))
        for stmt in body:
            match = _STMT_RE.match(stmt)
            if match is None:
                raise QasmError(f"cannot parse gate-body statement {stmt!r}")
            inner = match.group("name")
            inner_param_text = match.group("params")
            inner_params = []
            if inner_param_text:
                inner_params = [
                    evaluate_angle(piece, variables)
                    for piece in inner_param_text.split(",")
                ]
            inner_args = [
                a.strip() for a in match.group("args").split(",") if a.strip()
            ]
            inner_qubits = []
            for arg in inner_args:
                if arg not in qubit_bindings:
                    raise QasmError(
                        f"unknown qubit {arg!r} in body of gate {name!r}"
                    )
                inner_qubits.append(qubit_bindings[arg])
            _emit_application(
                inner, inner_params, inner_qubits, definitions, ops, depth + 1
            )
        return
    raise QasmError(f"unsupported gate {name!r}")


def load(path: str) -> QuantumCircuit:
    with open(path) as handle:
        return loads(handle.read())


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


def dumps(circuit: QuantumCircuit) -> str:
    """Serialize a circuit to OpenQASM 2.0 source.

    Operations with more controls than the standard library supports raise
    :class:`QasmError`; decompose them first (see
    :mod:`repro.compile.decompositions`).
    """
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    if circuit.num_clbits:
        lines.append(f"creg c[{circuit.num_clbits}];")
    for op in circuit.operations:
        if op.is_barrier:
            if op.controls:
                args = ", ".join(f"q[{q}]" for q in op.controls)
                lines.append(f"barrier {args};")
            else:
                lines.append("barrier q;")
            continue
        if op.is_measurement:
            lines.append(f"measure q[{op.targets[0]}] -> c[{op.clbits[0]}];")
            continue
        if op.gate.name == "gphase" and not op.controls:
            # OpenQASM 2 has no global-phase statement; the phase is recorded
            # as a comment and dropped on re-import (harmless up to phase).
            lines.append(f"// gphase({op.gate.params[0]!r})")
            continue
        key = (op.gate.name, len(op.controls))
        if key not in _TO_QASM:
            raise QasmError(
                f"no OpenQASM 2 name for {op.name_with_controls()!r}; "
                "decompose multi-controlled gates first"
            )
        name = _TO_QASM[key]
        params = ""
        if op.gate.params:
            params = "(" + ", ".join(repr(p) for p in op.gate.params) + ")"
        args = ", ".join(f"q[{q}]" for q in op.controls + op.targets)
        lines.append(f"{name}{params} {args};")
    return "\n".join(lines) + "\n"


def dump(circuit: QuantumCircuit, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(dumps(circuit))
