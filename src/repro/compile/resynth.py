"""Numeric resynthesis passes: 1q-run collapse and 2q-block resynthesis.

Peephole rewrites (:mod:`repro.compile.optimize`) only see algebraic
patterns — named inverse pairs, same-axis rotations.  These passes work
*numerically* instead:

- :class:`Collapse1qRuns` multiplies every maximal run of single-qubit
  gates on a wire into one 2x2 unitary and re-emits it through the
  Euler-angle decomposition (at most three basis rotations plus a
  ``gphase``), regardless of how the run was originally spelled;
- :class:`Resynth2qBlocks` collects maximal two-qubit blocks (the gate
  fusion grouping restricted to two-qubit support), Cartan-decomposes
  the 4x4 block unitary, and re-emits it through a 3-CX canonical
  circuit — or 2/0 CX when interaction coefficients vanish — keeping
  the result only when it actually lowers the CX count.

The canonical interaction ``N = exp(i(c1 XX + c2 YY + c3 ZZ))`` is
synthesized *exactly* (global phase included) as, in circuit order::

    sdg(t); cx(c,t); s(t)                # CY(c,t)
    s(c); rz(-2 c3, t); rx(2 c2, c)
    h(t); cx(c,t); h(t)                  # CZ(c,t)
    rx(-2 c1, c)
    cx(c,t)

which follows from conjugating the three commuting interaction terms
through CX — ``CX (X⊗I) CX = X⊗X``, ``CX (I⊗Z) CX = Z⊗Z``,
``CX (Y⊗Y) CX = -(X⊗Z)`` — so a single CX turns the two-qubit
exponential into single-qubit exponentials sandwiched by one CZ and one
CY.  Every emitted block is verified numerically against the target
unitary; a mismatch (never observed, but synthesis must be safe) falls
back to the existing rxx/ryy/rzz lowering in
:func:`repro.compile.kak.decompose_two_qubit_unitary`.
"""

from __future__ import annotations

import cmath
from typing import Dict, List, Optional, Set

import numpy as np

from ..circuits import gates as g
from ..circuits.circuit import Operation, QuantumCircuit
from .decompositions import decompose_single_qubit
from .fusion import fused_matrix
from .kak import kak_decompose
from .passes import STRUCTURAL
from .passmanager import PropertySet, TransformationPass

_COEFF_TOL = 1e-12


def _u1q(matrix: np.ndarray, qubit: int) -> Operation:
    return Operation(g.Gate("unitary1q", 1, matrix), [qubit])


def synthesize_canonical(
    c1: float, c2: float, c3: float, qc: int, qt: int
) -> List[Operation]:
    """Exact circuit for ``exp(i(c1 XX + c2 YY + c3 ZZ))`` on ``(qc, qt)``.

    0 CX when all coefficients vanish, 2 CX when exactly one is
    non-zero, 3 CX otherwise.  The result equals the exponential as a
    matrix — global phase included — so it can replace a canonical
    factor inside a larger decomposition without a phase correction.
    """
    cx = lambda: Operation(g.X, [qt], [qc])
    live = [abs(c) > _COEFF_TOL for c in (c1, c2, c3)]
    if not any(live):
        return []
    if live == [True, False, False]:
        # CX e^{i c1 X_c} CX = e^{i c1 XX};  e^{i a X} = Rx(-2a).
        return [cx(), Operation(g.rx(-2 * c1), [qc]), cx()]
    if live == [False, False, True]:
        # CX e^{i c3 Z_t} CX = e^{i c3 ZZ};  e^{i a Z} = Rz(-2a).
        return [cx(), Operation(g.rz(-2 * c3), [qt]), cx()]
    if live == [False, True, False]:
        # (S⊗S) e^{i c2 XX} (S†⊗S†) = e^{i c2 YY}.
        return [
            Operation(g.SDG, [qc]),
            Operation(g.SDG, [qt]),
            cx(),
            Operation(g.rx(-2 * c2), [qc]),
            cx(),
            Operation(g.S, [qc]),
            Operation(g.S, [qt]),
        ]
    return [
        # CY(qc, qt) = (I⊗S) CX (I⊗S†)
        Operation(g.SDG, [qt]),
        cx(),
        Operation(g.S, [qt]),
        Operation(g.S, [qc]),
        Operation(g.rz(-2 * c3), [qt]),
        Operation(g.rx(2 * c2), [qc]),
        # CZ(qc, qt) = (I⊗H) CX (I⊗H)
        Operation(g.H, [qt]),
        cx(),
        Operation(g.H, [qt]),
        Operation(g.rx(-2 * c1), [qc]),
        cx(),
    ]


def _collapse_1q_segments(
    ops: List[Operation], basis: Optional[frozenset]
) -> List[Operation]:
    """Merge consecutive single-qubit ops per wire; re-emit in ``basis``.

    ``basis=None`` emits one raw ``unitary1q`` per merged run (the form
    simulation backends consume directly); otherwise each run lowers
    through :func:`~repro.compile.decompositions.decompose_single_qubit`.
    Runs whose re-emission is not shorter keep their original spelling.
    """
    emitted: List = []
    active: Dict[int, Optional[List[Operation]]] = {}

    def close(q: int) -> None:
        active[q] = None

    for op in ops:
        if (
            op.is_unitary
            and not op.controls
            and op.condition is None
            and op.gate.num_qubits == 1
        ):
            q = op.targets[0]
            run = active.get(q)
            if run is not None:
                run.append(op)
                continue
            run = [op]
            active[q] = run
            emitted.append((q, run))
            continue
        if op.is_barrier:
            for q in op.qubits if op.qubits else list(active):
                close(q)
        else:
            for q in op.qubits:
                close(q)
        emitted.append(op)

    out: List[Operation] = []
    for item in emitted:
        if not isinstance(item, tuple):
            out.append(item)
            continue
        q, run = item
        if len(run) == 1:
            out.append(run[0])
            continue
        matrix = np.eye(2, dtype=np.complex128)
        for op in run:
            matrix = op.gate.matrix @ matrix
        if basis is None:
            candidate = (
                [] if g.Gate("unitary1q", 1, matrix).is_identity()
                else [_u1q(matrix, q)]
            )
        else:
            candidate = decompose_single_qubit(matrix, q, basis)
        if len(candidate) < len(run):
            out.extend(candidate)
        else:
            out.extend(run)
    return out


def synthesize_two_qubit(
    matrix: np.ndarray,
    qubit_low: int,
    qubit_high: int,
    basis: Optional[frozenset] = None,
) -> List[Operation]:
    """Resynthesize a 4x4 unitary with at most 3 CX gates.

    ``matrix`` follows the library convention (``qubit_low`` less
    significant).  The Cartan decomposition supplies the local factors
    and interaction coefficients; :func:`synthesize_canonical` emits the
    interaction with 0/2/3 CX; local runs collapse through the Euler
    decomposition (or stay as raw ``unitary1q`` gates with
    ``basis=None``).  The global phase is kept exact via ``gphase``.
    """
    decomposition = kak_decompose(matrix)
    c1, c2, c3 = decomposition.coefficients
    ops: List[Operation] = [
        _u1q(decomposition.b1, qubit_high),
        _u1q(decomposition.b2, qubit_low),
    ]
    ops.extend(synthesize_canonical(c1, c2, c3, qubit_low, qubit_high))
    ops.append(_u1q(decomposition.a1, qubit_high))
    ops.append(_u1q(decomposition.a2, qubit_low))
    angle = cmath.phase(decomposition.phase)
    if abs(angle) > 1e-12:
        ops.append(Operation(g.gphase(angle), []))
    ops = _collapse_1q_segments(ops, None)
    if basis is None:
        return ops
    # The template's fixed gates (s/sdg/h/rx, and cx under a cz basis)
    # are not basis gates: lower the whole candidate, then merge the
    # rotation chains the lowering leaves behind.
    from .decompositions import decompose_to_basis

    shim = QuantumCircuit(max(qubit_low, qubit_high) + 1)
    shim.operations = ops
    return _collapse_1q_segments(
        list(decompose_to_basis(shim, basis).operations), basis
    )


def _block_matrix(ops: List[Operation], support: List[int]) -> np.ndarray:
    return fused_matrix(ops, support)


def _verified(
    candidate: List[Operation],
    target: np.ndarray,
    support: List[int],
) -> bool:
    """Numeric safety net: the candidate must reproduce ``target`` exactly."""
    local = {q: i for i, q in enumerate(support)}
    rebuilt = np.eye(len(target), dtype=np.complex128)
    phase = 0.0
    for op in candidate:
        if op.gate.num_qubits == 0:
            phase += op.gate.params[0]
            continue
        rebuilt = _block_matrix(
            [op.remapped(local)], list(range(len(support)))
        ) @ rebuilt
    rebuilt = rebuilt * cmath.exp(1j * phase)
    return bool(np.allclose(rebuilt, target, atol=1e-7))


class Collapse1qRuns(TransformationPass):
    """Numerically collapse single-qubit runs via the Euler decomposition."""

    preserves = STRUCTURAL

    def __init__(self, basis: Optional[frozenset] = None) -> None:
        self.basis = basis

    def run(
        self, circuit: QuantumCircuit, properties: PropertySet
    ) -> QuantumCircuit:
        out = circuit.copy()
        out.operations = _collapse_1q_segments(
            list(circuit.operations), self.basis
        )
        return out


class Resynth2qBlocks(TransformationPass):
    """Resynthesize two-qubit blocks through the Cartan decomposition.

    Blocks are collected with the gate-fusion forward scan capped at
    two-qubit support; each multi-gate block is replaced by its 3-CX
    (or better) synthesis **only when that lowers the CX count** — or
    matches it with strictly fewer total operations — so the pass is
    monotone in both metrics.  Emitted gates stay inside ``basis`` when
    one is given (``cx``/``rz``/``ry``-style bases); ``basis=None``
    emits raw ``unitary1q`` locals for simulation pipelines.
    """

    preserves = STRUCTURAL

    def __init__(self, basis: Optional[frozenset] = None) -> None:
        self.basis = basis

    def run(
        self, circuit: QuantumCircuit, properties: PropertySet
    ) -> QuantumCircuit:
        emitted: List = []
        active: Dict[int, Optional[_Block]] = {}

        def fence(qubits) -> None:
            for q in qubits:
                active[q] = None

        for op in circuit.operations:
            if op.is_barrier:
                fence(op.qubits if op.qubits else list(active))
                emitted.append(op)
                continue
            if (
                op.is_measurement
                or op.condition is not None
                or not op.is_unitary
            ):
                fence(op.qubits)
                emitted.append(op)
                continue
            qubits = op.qubits
            if not qubits:
                emitted.append(op)
                continue
            owners = {active[q] for q in qubits if q in active}
            if len(owners) == 1:
                block = next(iter(owners))
                if (
                    block is not None
                    and len(block.support | set(qubits)) <= 2
                ):
                    block.ops.append(op)
                    block.support.update(qubits)
                    for q in qubits:
                        active[q] = block
                    continue
            if len(qubits) > 2:
                fence(qubits)
                emitted.append(op)
                continue
            block = _Block(op)
            emitted.append(block)
            for q in qubits:
                active[q] = block

        out = circuit.copy()
        ops: List[Operation] = []
        for item in emitted:
            if not isinstance(item, _Block):
                ops.append(item)
                continue
            ops.extend(self._emit(item))
        out.operations = ops
        return out

    def _emit(self, block: "_Block") -> List[Operation]:
        if len(block.ops) == 1 or len(block.support) != 2:
            return block.ops
        support = sorted(block.support)
        target = _block_matrix(block.ops, support)
        try:
            candidate = synthesize_two_qubit(
                target, support[0], support[1], basis=self.basis
            )
        except (RuntimeError, ValueError):
            return block.ops
        if not _verified(candidate, target, support):
            from .kak import decompose_two_qubit_unitary

            candidate = decompose_two_qubit_unitary(
                target, support[0], support[1]
            )
            if self.basis is not None:
                from .decompositions import decompose_to_basis

                shim = QuantumCircuit(max(support) + 1)
                shim.operations = candidate
                candidate = list(
                    decompose_to_basis(shim, self.basis).operations
                )
        old_cx = sum(
            1 for op in block.ops if op.is_unitary and len(op.qubits) >= 2
        )
        new_cx = sum(
            1 for op in candidate if op.is_unitary and len(op.qubits) >= 2
        )
        if new_cx < old_cx or (
            new_cx == old_cx and len(candidate) < len(block.ops)
        ):
            return candidate
        return block.ops


class _Block:
    """An open two-qubit-support run (fusion-style grouping)."""

    __slots__ = ("ops", "support")

    def __init__(self, op: Operation) -> None:
        self.ops: List[Operation] = [op]
        self.support: Set[int] = set(op.qubits)
