"""Gate decompositions: multi-controlled gates, two-qubit specials, Euler angles.

These rewrites lower the rich IR gate set to the small gate families real
devices (and the MPS simulator) support: single-qubit gates plus CX.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Sequence, Set, Tuple

import numpy as np

from ..circuits import gates as g
from ..circuits.circuit import Operation, QuantumCircuit

_ATOL = 1e-12


def euler_zyz(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """Factor a 2x2 unitary as ``e^{i*alpha} Rz(beta) Ry(gamma) Rz(delta)``."""
    matrix = np.asarray(matrix, dtype=np.complex128)
    det = matrix[0, 0] * matrix[1, 1] - matrix[0, 1] * matrix[1, 0]
    alpha = cmath.phase(det) / 2.0
    su2 = matrix * cmath.exp(-1j * alpha)
    c = abs(su2[0, 0])
    s = abs(su2[1, 0])
    gamma = 2.0 * math.atan2(s, c)
    if c > _ATOL and s > _ATOL:
        phi00 = cmath.phase(su2[0, 0])
        phi10 = cmath.phase(su2[1, 0])
        beta = phi10 - phi00
        delta = -phi00 - phi10
    elif s <= _ATOL:
        # Diagonal: gamma ~ 0, put everything into beta.
        beta = 2.0 * cmath.phase(su2[1, 1])
        delta = 0.0
    else:
        # Anti-diagonal: gamma ~ pi.
        beta = 2.0 * cmath.phase(su2[1, 0])
        delta = 0.0
    return alpha, beta, gamma, delta


def _product_matrix(ops: Sequence[Operation]) -> np.ndarray:
    """2x2 product of single-qubit ops (all on the same qubit), last-first."""
    matrix = np.eye(2, dtype=np.complex128)
    for op in ops:
        matrix = op.gate.matrix @ matrix
    return matrix


def decompose_single_qubit(
    matrix: np.ndarray, qubit: int, basis: Set[str]
) -> List[Operation]:
    """Rewrite an arbitrary single-qubit unitary into basis gates.

    Supported bases: any containing ``u``; any containing ``rz`` and ``ry``;
    any containing ``rz`` and ``sx``.  A ``gphase`` op keeps the result
    exactly equal (not just up to phase), so decompositions stay valid inside
    controlled contexts.
    """
    alpha, beta, gamma, delta = euler_zyz(matrix)
    ops: List[Operation]
    if "u" in basis:
        # u(theta, phi, lam) = e^{i (phi+lam)/2} Rz(phi) Ry(theta) Rz(lam)
        ops = [Operation(g.u(gamma, beta, delta), [qubit])]
        residual = alpha - (beta + delta) / 2.0
    elif "rz" in basis and "ry" in basis:
        ops = []
        if abs(delta) > _ATOL:
            ops.append(Operation(g.rz(delta), [qubit]))
        if abs(gamma) > _ATOL:
            ops.append(Operation(g.ry(gamma), [qubit]))
        if abs(beta) > _ATOL:
            ops.append(Operation(g.rz(beta), [qubit]))
        residual = alpha
    elif "rz" in basis and "sx" in basis:
        # Standard ZSXZSXZ form: Rz(beta) Ry(gamma) Rz(delta) equals, up to
        # phase, the matrix product Rz(beta+pi).SX.Rz(gamma+pi).SX.Rz(delta)
        # (circuit order is right to left).
        ops = [
            Operation(g.rz(delta), [qubit]),
            Operation(g.SX, [qubit]),
            Operation(g.rz(gamma + math.pi), [qubit]),
            Operation(g.SX, [qubit]),
            Operation(g.rz(beta + math.pi), [qubit]),
        ]
        product = _product_matrix(ops)
        # Fix the phase numerically against the requested matrix.
        pivot = int(np.argmax(np.abs(matrix)))
        residual = cmath.phase(
            matrix.reshape(-1)[pivot] / product.reshape(-1)[pivot]
        )
    else:
        raise ValueError(f"no single-qubit decomposition into basis {sorted(basis)}")
    if abs(residual) > 1e-10:
        ops.append(Operation(g.gphase(residual), []))
    return ops


def decompose_controlled_single_qubit(op: Operation) -> List[Operation]:
    """ABC decomposition of a singly-controlled single-qubit gate.

    ``U = e^{i*alpha} A X B X C`` with ``A B C = I`` (Nielsen & Chuang 4.2):
    the circuit needs two CX gates, three single-qubit rotations, and a
    phase gate on the control.
    """
    if len(op.controls) != 1 or len(op.targets) != 1:
        raise ValueError("expected exactly one control and one target")
    control = op.controls[0]
    target = op.targets[0]
    alpha, beta, gamma, delta = euler_zyz(op.gate.matrix)
    ops: List[Operation] = []
    # C = Rz((delta - beta)/2)
    angle_c = (delta - beta) / 2.0
    if abs(angle_c) > _ATOL:
        ops.append(Operation(g.rz(angle_c), [target]))
    ops.append(Operation(g.X, [target], [control]))
    # B = Ry(-gamma/2) Rz(-(delta + beta)/2): circuit order Rz then Ry.
    angle_b = -(delta + beta) / 2.0
    if abs(angle_b) > _ATOL:
        ops.append(Operation(g.rz(angle_b), [target]))
    if abs(gamma) > _ATOL:
        ops.append(Operation(g.ry(-gamma / 2.0), [target]))
    ops.append(Operation(g.X, [target], [control]))
    # A = Rz(beta) Ry(gamma/2): circuit order Ry then Rz.
    if abs(gamma) > _ATOL:
        ops.append(Operation(g.ry(gamma / 2.0), [target]))
    if abs(beta) > _ATOL:
        ops.append(Operation(g.rz(beta), [target]))
    if abs(alpha) > 1e-12:
        ops.append(Operation(g.p(alpha), [control]))
    return ops


def decompose_toffoli(c1: int, c2: int, target: int) -> List[Operation]:
    """Standard 15-gate {H, T, Tdg, CX} Toffoli decomposition."""
    cx = lambda a, b: Operation(g.X, [b], [a])
    return [
        Operation(g.H, [target]),
        cx(c2, target),
        Operation(g.TDG, [target]),
        cx(c1, target),
        Operation(g.T, [target]),
        cx(c2, target),
        Operation(g.TDG, [target]),
        cx(c1, target),
        Operation(g.T, [c2]),
        Operation(g.T, [target]),
        Operation(g.H, [target]),
        cx(c1, c2),
        Operation(g.T, [c1]),
        Operation(g.TDG, [c2]),
        cx(c1, c2),
    ]


def _matrix_sqrt(matrix: np.ndarray) -> np.ndarray:
    """Principal square root of a 2x2 unitary (eigendecomposition)."""
    values, vectors = np.linalg.eig(matrix)
    root = vectors @ np.diag(np.sqrt(values.astype(np.complex128))) @ np.linalg.inv(vectors)
    return root


def decompose_multi_controlled(op: Operation) -> List[Operation]:
    """Barenco-style recursion for gates with two or more controls.

    ``C^n(U) = C(V) . C^{n-1}(X) . C(V†) . C^{n-1}(X) . C^{n-1}(V)`` with
    ``V = sqrt(U)``.  Gate count grows exponentially in the control count —
    acceptable for the moderate control counts in our workloads, and it
    needs no ancilla qubits.
    """
    if len(op.targets) != 1:
        raise ValueError("multi-controlled decomposition expects one target")
    controls = list(op.controls)
    target = op.targets[0]
    if len(controls) < 2:
        raise ValueError("use the single-control decomposition instead")
    if len(controls) == 2 and op.gate.name == "x":
        return decompose_toffoli(controls[0], controls[1], target)
    matrix = op.gate.matrix
    v = _matrix_sqrt(matrix)
    v_gate = g.Gate("unitary1q", 1, v)
    v_dg_gate = g.Gate("unitary1q", 1, v.conj().T)
    last = controls[-1]
    rest = controls[:-1]
    ops: List[Operation] = []
    ops.append(Operation(v_gate, [target], [last]))
    ops.extend(_expand_mcx(rest, last))
    ops.append(Operation(v_dg_gate, [target], [last]))
    ops.extend(_expand_mcx(rest, last))
    inner = Operation(v_gate, [target], rest)
    if len(rest) >= 2:
        ops.extend(decompose_multi_controlled(inner))
    else:
        ops.append(inner)
    return ops


def _expand_mcx(controls: Sequence[int], target: int) -> List[Operation]:
    if len(controls) == 1:
        return [Operation(g.X, [target], controls)]
    return decompose_multi_controlled(Operation(g.X, [target], controls))


def decompose_mcx_with_ancillas(
    controls: Sequence[int], target: int, ancillas: Sequence[int]
) -> List[Operation]:
    """V-chain multi-controlled X: linear size using clean ancillas.

    Needs ``len(controls) - 2`` ancillas (assumed |0>, returned to |0>).
    ``2(k-2) + 1`` Toffolis for ``k`` controls — compare with the
    ancilla-free Barenco recursion, which grows exponentially.
    """
    controls = list(controls)
    k = len(controls)
    if k <= 2:
        return [Operation(g.X, [target], controls)]
    needed = k - 2
    if len(ancillas) < needed:
        raise ValueError(f"{k}-control v-chain needs {needed} ancillas")
    used = list(ancillas[:needed])
    ops: List[Operation] = []
    # Ladder up: anc[0] = c0 AND c1; anc[i] = anc[i-1] AND c_{i+1}.
    ops.append(Operation(g.X, [used[0]], [controls[0], controls[1]]))
    for i in range(1, needed):
        ops.append(Operation(g.X, [used[i]], [used[i - 1], controls[i + 1]]))
    ops.append(Operation(g.X, [target], [used[-1], controls[-1]]))
    # Ladder down: uncompute the ancillas.
    for i in range(needed - 1, 0, -1):
        ops.append(Operation(g.X, [used[i]], [used[i - 1], controls[i + 1]]))
    ops.append(Operation(g.X, [used[0]], [controls[0], controls[1]]))
    return ops


def decompose_mcp_parity(
    angle: float, controls: Sequence[int], target: int
) -> List[Operation]:
    """Parity-network multi-controlled phase gate: CX + rz only, no ancillas.

    A multi-controlled phase is the diagonal unitary with phase ``angle``
    exactly on the all-ones assignment of ``controls + [target]``.  Expanded
    over parities, that diagonal is a phase polynomial with one term of
    coefficient ``angle * (-1)^{|S|+1} / 2^{k-1}`` per non-empty subset ``S``
    of the participating wires; the library's phase-polynomial builder
    compiles each term as a CX ladder around one ``rz``.

    Compared with the Barenco recursion this emits only CX and rz (no
    square-root gates and no recursion through generic unitaries) at a
    comparable two-qubit count; it is the natural form for the
    phase-polynomial reasoning the ZX-calculus literature targets.
    """
    qubits = list(controls) + [target]
    k = len(qubits)
    from itertools import combinations as _combinations

    from ..circuits.library import phase_polynomial_circuit

    terms = []
    for size in range(1, k + 1):
        # rz convention: rz(theta) puts e^{i theta/2} on odd parity; solving
        # the linear system for "angle exactly on all-ones" gives
        # coefficient theta_S = -angle * (-1/2)^{k-1} * (-1)^{k-|S|} ... we
        # build it from the standard identity: the AND function as a parity
        # expansion AND(x) = (1/2^{k-1}) * sum_S (-1)^{|S|+1} parity_S(x)/...
        coefficient = angle * ((-1) ** (size + 1)) / (2 ** (k - 1))
        for subset in _combinations(qubits, size):
            mask = 0
            for q in subset:
                mask |= 1 << q
            terms.append((mask, coefficient))
    num_qubits = max(qubits) + 1
    circuit = phase_polynomial_circuit(num_qubits, terms)
    ops = list(circuit.operations)
    # Each rz(theta) term contributes e^{-i theta/2} on the all-zeros input;
    # cancel that analytically so the result is *exactly* mcp.
    correction = sum(theta for _mask, theta in terms) / 2.0
    if abs(correction) > 1e-12:
        ops.append(Operation(g.gphase(correction), []))
    return ops


def decompose_two_qubit_named(op: Operation) -> List[Operation]:
    """Rewrite uncontrolled two-qubit library gates into {1q, CX}."""
    a, b = op.targets
    name = op.gate.name
    cx = lambda x, y: Operation(g.X, [y], [x])
    if name == "swap":
        return [cx(a, b), cx(b, a), cx(a, b)]
    if name == "iswap":
        # iSWAP = (S ⊗ S) . H_a . CX(a,b) . CX(b,a) . H_b
        return [
            Operation(g.S, [a]),
            Operation(g.S, [b]),
            Operation(g.H, [a]),
            cx(a, b),
            cx(b, a),
            Operation(g.H, [b]),
        ]
    if name == "iswapdg":
        forward = decompose_two_qubit_named(Operation(g.ISWAP, [a, b]))
        return [o.inverse() for o in reversed(forward)]
    if name == "rzz":
        (theta,) = op.gate.params
        return [cx(a, b), Operation(g.rz(theta), [b]), cx(a, b)]
    if name == "rxx":
        (theta,) = op.gate.params
        wrap = [Operation(g.H, [a]), Operation(g.H, [b])]
        core = [cx(a, b), Operation(g.rz(theta), [b]), cx(a, b)]
        return wrap + core + wrap
    if name == "ryy":
        (theta,) = op.gate.params
        pre = [Operation(g.rx(math.pi / 2), [a]), Operation(g.rx(math.pi / 2), [b])]
        core = [cx(a, b), Operation(g.rz(theta), [b]), cx(a, b)]
        post = [Operation(g.rx(-math.pi / 2), [a]), Operation(g.rx(-math.pi / 2), [b])]
        return pre + core + post
    # No named rule: fall back to the exact Cartan (KAK) decomposition.
    from .kak import decompose_two_qubit_unitary

    return decompose_two_qubit_unitary(op.gate.matrix, a, b)


def decompose_to_two_qubit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Lower every operation to at most two qubits (1q, or 1 control + 1 target).

    Multi-controlled gates expand via Toffoli/Barenco; controlled swaps go
    through CX conjugation first.
    """
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name + "_2q")
    out.num_clbits = circuit.num_clbits

    def lower(op: Operation) -> List[Operation]:
        if op.is_barrier or op.is_measurement:
            return [op]
        total = len(op.targets) + len(op.controls)
        if total <= 2 and len(op.targets) <= 2:
            if len(op.targets) == 2 and op.controls:
                pass  # controlled two-qubit gate, fall through
            else:
                return [op]
        if len(op.targets) == 2:
            # Controlled two-qubit gate: push controls through a CX sandwich
            # when it is a controlled swap, otherwise decompose the base gate
            # first and control each piece.
            if op.gate.name == "swap":
                a, b = op.targets
                inner = Operation(g.X, [b], list(op.controls) + [a])
                pieces = [Operation(g.X, [a], [b]), inner, Operation(g.X, [a], [b])]
            else:
                base_ops = decompose_two_qubit_named(Operation(op.gate, op.targets))
                pieces = [
                    Operation(piece.gate, piece.targets, tuple(op.controls) + piece.controls)
                    for piece in base_ops
                ]
            result: List[Operation] = []
            for piece in pieces:
                result.extend(lower(piece))
            return result
        if len(op.controls) >= 2:
            result = []
            for piece in decompose_multi_controlled(op):
                result.extend(lower(piece))
            return result
        return [op]

    for op in circuit.operations:
        for piece in lower(op):
            out.append(piece)
    return out


# Gate families usable as compilation targets.
BASIS_CX_U = frozenset({"cx", "u", "gphase"})
BASIS_CX_RZ_RY = frozenset({"cx", "rz", "ry", "gphase"})
BASIS_IBM = frozenset({"cx", "rz", "sx", "x", "gphase"})
BASIS_CZ_RZ_RY = frozenset({"cz", "rz", "ry", "gphase"})


def decompose_to_basis(circuit: QuantumCircuit, basis: frozenset) -> QuantumCircuit:
    """Full lowering: at most two qubits, then translate into ``basis``.

    ``basis`` contains op display names (``cx``, ``rz``, ...); ``gphase``
    should be included unless exact global phase is irrelevant.
    """
    two_qubit = decompose_to_two_qubit(circuit)
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name + "_basis")
    out.num_clbits = circuit.num_clbits
    single_qubit_basis = {name for name in basis if name in ("u", "rz", "ry", "rx", "sx", "x", "h")}

    def allowed(op: Operation) -> bool:
        return op.name_with_controls() in basis

    def lower(op: Operation) -> List[Operation]:
        if op.is_barrier or op.is_measurement or allowed(op):
            return [op]
        if not op.controls and len(op.targets) == 1:
            return decompose_single_qubit(op.gate.matrix, op.targets[0], basis)
        if len(op.controls) == 1 and len(op.targets) == 1:
            if op.gate.name == "x" and "cz" in basis:
                target = op.targets[0]
                h_ops = decompose_single_qubit(g.H.matrix, target, basis) if "h" not in basis else [Operation(g.H, [target])]
                return (
                    list(h_ops)
                    + [Operation(g.Z, [op.targets[0]], op.controls)]
                    + list(h_ops)
                )
            if op.gate.name == "z" and "cx" in basis:
                target = op.targets[0]
                h_ops = decompose_single_qubit(g.H.matrix, target, basis) if "h" not in basis else [Operation(g.H, [target])]
                return (
                    list(h_ops)
                    + [Operation(g.X, [op.targets[0]], op.controls)]
                    + list(h_ops)
                )
            pieces = decompose_controlled_single_qubit(op)
            result: List[Operation] = []
            for piece in pieces:
                result.extend(lower(piece))
            return result
        if not op.controls and len(op.targets) == 2:
            pieces = decompose_two_qubit_named(op)
            result = []
            for piece in pieces:
                result.extend(lower(piece))
            return result
        if op.gate.num_qubits == 0:
            if op.controls:
                # A controlled global phase is a phase gate on the controls:
                # one control becomes the target of a (multi-controlled) p.
                angle = op.gate.params[0]
                rewritten = Operation(
                    g.p(angle), [op.controls[-1]], op.controls[:-1]
                )
                return lower(rewritten)
            # Bare global phase not in basis: keep it anyway (harmless) if
            # gphase excluded, since dropping it would break exactness.
            return [op]
        raise ValueError(f"cannot lower op {op!r} to basis {sorted(basis)}")

    for op in two_qubit.operations:
        for piece in lower(op):
            if piece.is_unitary and not piece.controls and piece.gate.num_qubits == 1 and piece.gate.is_identity():
                continue
            out.append(piece)
    return out
