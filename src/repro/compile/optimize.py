"""Peephole circuit optimization passes.

Local rewrites on the gate list: inverse cancellation, rotation merging,
identity removal, and a small algebraic pair table (S.S = Z etc.).  These
are the classical counterpart to the ZX-based optimization in
:mod:`repro.compile.zx_opt` and serve as its post-processing cleanup.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..circuits import gates as g
from ..circuits.circuit import Operation, QuantumCircuit

# Same-qubit adjacent pairs that merge into one gate (both uncontrolled).
_PAIR_TABLE: Dict[Tuple[str, str], Optional[str]] = {
    ("s", "s"): "z",
    ("sdg", "sdg"): "z",
    ("t", "t"): "s",
    ("tdg", "tdg"): "sdg",
    ("sx", "sx"): "x",
    ("sxdg", "sxdg"): "x",
    ("z", "s"): "sdg",
    ("s", "z"): "sdg",
    ("z", "sdg"): "s",
    ("sdg", "z"): "s",
    ("s", "t"): None,  # placeholder: handled by rotation merging via p()
}

# Gates representable as a phase rotation p(angle) for merging purposes.
_PHASE_ANGLES = {
    "z": math.pi,
    "s": math.pi / 2,
    "sdg": -math.pi / 2,
    "t": math.pi / 4,
    "tdg": -math.pi / 4,
}

_MERGEABLE_ROTATIONS = {"rx", "ry", "rz", "p", "rzz", "rxx", "ryy", "gphase"}


def _is_inverse_pair(a: Operation, b: Operation) -> bool:
    if a.targets != b.targets or set(a.controls) != set(b.controls):
        return False
    try:
        return a.gate.inverse() == b.gate
    except ValueError:
        return False


def _phase_angle(op: Operation) -> Optional[float]:
    """The p()-angle of an uncontrolled diagonal 1q gate, if it is one."""
    if op.controls or len(op.targets) != 1:
        return None
    name = op.gate.name
    if name in _PHASE_ANGLES:
        return _PHASE_ANGLES[name]
    if name in ("p", "u1"):
        return op.gate.params[0]
    return None


def cancel_inverses(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove adjacent gate/inverse pairs (adjacency modulo disjoint qubits)."""
    ops: List[Optional[Operation]] = list(circuit.operations)
    changed = True
    while changed:
        changed = False
        last_on_qubit: Dict[int, int] = {}
        for idx, op in enumerate(ops):
            if op is None:
                continue
            if op.is_barrier or op.is_measurement:
                for q in op.qubits if op.qubits else range(circuit.num_qubits):
                    last_on_qubit[q] = idx
                continue
            qubits = op.qubits
            prev_indices = {last_on_qubit.get(q) for q in qubits}
            if len(prev_indices) == 1:
                (prev_idx,) = prev_indices
                if prev_idx is not None:
                    prev = ops[prev_idx]
                    if (
                        prev is not None
                        and prev.is_unitary
                        and set(prev.qubits) == set(qubits)
                        and _is_inverse_pair(prev, op)
                    ):
                        ops[prev_idx] = None
                        ops[idx] = None
                        changed = True
                        for q in qubits:
                            del last_on_qubit[q]
                        continue
            for q in qubits:
                last_on_qubit[q] = idx
    out = circuit.copy()
    out.operations = [op for op in ops if op is not None]
    return out


def merge_rotations(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse adjacent same-axis rotations and diagonal phase gates."""
    ops: List[Optional[Operation]] = list(circuit.operations)
    changed = True
    while changed:
        changed = False
        last_on_qubit: Dict[int, int] = {}
        for idx, op in enumerate(ops):
            if op is None:
                continue
            if op.is_barrier or op.is_measurement:
                for q in op.qubits if op.qubits else range(circuit.num_qubits):
                    last_on_qubit[q] = idx
                continue
            qubits = op.qubits
            prev_indices = {last_on_qubit.get(q) for q in qubits}
            merged = None
            if len(prev_indices) == 1 and None not in prev_indices:
                (prev_idx,) = prev_indices
                prev = ops[prev_idx]
                if prev is not None and prev.is_unitary:
                    merged = _try_merge(prev, op)
            if merged is not None:
                ops[prev_idx] = None
                ops[idx] = merged if not _is_trivial(merged) else None
                changed = True
                for q in qubits:
                    if ops[idx] is not None:
                        last_on_qubit[q] = idx
                    else:
                        del last_on_qubit[q]
                continue
            for q in qubits:
                last_on_qubit[q] = idx
    out = circuit.copy()
    out.operations = [op for op in ops if op is not None]
    return out


def _try_merge(prev: Operation, op: Operation) -> Optional[Operation]:
    if prev.targets != op.targets or set(prev.controls) != set(op.controls):
        return None
    name_a, name_b = prev.gate.name, op.gate.name
    if (
        name_a == name_b
        and name_a in _MERGEABLE_ROTATIONS
        and prev.gate.params
        and op.gate.params
    ):
        angle = prev.gate.params[0] + op.gate.params[0]
        gate = g.PARAMETRIC_GATES[name_a](angle)
        return Operation(gate, op.targets, op.controls)
    if not prev.controls and not op.controls and len(op.targets) == 1:
        pa = _phase_angle(prev)
        pb = _phase_angle(op)
        if pa is not None and pb is not None:
            total = pa + pb
            return Operation(g.p(total), op.targets)
        key = (name_a, name_b)
        if key in _PAIR_TABLE and _PAIR_TABLE[key] is not None:
            return Operation(g.FIXED_GATES[_PAIR_TABLE[key]], op.targets)
    return None


def _is_trivial(op: Operation, tol: float = 1e-12) -> bool:
    if not op.is_unitary or op.gate.num_qubits == 0:
        if op.gate.name == "gphase":
            return abs(op.gate.params[0] % (2 * math.pi)) < tol or (
                2 * math.pi - abs(op.gate.params[0] % (2 * math.pi)) < tol
            )
        return False
    return op.gate.is_identity(tol)


def remove_identities(circuit: QuantumCircuit) -> QuantumCircuit:
    out = circuit.copy()
    out.operations = [
        op
        for op in circuit.operations
        if op.is_barrier or op.is_measurement or not _is_trivial(op)
    ]
    return out


def optimize(
    circuit: QuantumCircuit,
    max_rounds: int = 20,
    commutation: bool = True,
) -> QuantumCircuit:
    """Run all peephole passes to a fixpoint.

    ``commutation=True`` additionally cancels/merges through commuting
    gates (exact joint-support commutation checks); disable it for very
    large circuits where the adjacent-only passes suffice.
    """
    from .commutation import commutative_cancellation

    current = circuit
    for _ in range(max_rounds):
        size = len(current)
        current = remove_identities(current)
        current = cancel_inverses(current)
        current = merge_rotations(current)
        if commutation:
            current = commutative_cancellation(current)
        if len(current) == size:
            break
    return current
