"""Commutation analysis and commutation-aware gate cancellation.

``cancel_inverses`` only sees *adjacent* inverse pairs; real circuits hide
cancellations behind gates that commute with them (an Rz on a CX control, a
Z between two CZs, ...).  This pass checks commutation exactly — by
multiplying the two operations' unitaries on their joint support (at most a
16x16 matrix) — and cancels/merges through commuting barriers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits import gates as g
from ..circuits.circuit import Operation, QuantumCircuit

_COMMUTE_CACHE: Dict[Tuple, bool] = {}
_MAX_JOINT_QUBITS = 5


def _local_pattern(op: Operation, local: Dict[int, int]) -> Tuple:
    return (
        op.gate,
        tuple(local[q] for q in op.targets),
        frozenset(local[q] for q in op.controls),
    )


def operations_commute(op1: Operation, op2: Operation) -> bool:
    """Exact commutation check on the joint support.

    Disjoint supports trivially commute; otherwise the two embedded
    unitaries are multiplied both ways on the union qubits (cached by the
    gate/wiring pattern, so repeated circuit structure costs one check).
    """
    if not (op1.is_unitary and op2.is_unitary):
        return False
    if op1.condition is not None or op2.condition is not None:
        return False
    support1 = set(op1.qubits)
    support2 = set(op2.qubits)
    if not support1 & support2:
        return True
    union = sorted(support1 | support2)
    if len(union) > _MAX_JOINT_QUBITS:
        return False  # give up rather than build a big matrix
    local = {q: i for i, q in enumerate(union)}
    key = (_local_pattern(op1, local), _local_pattern(op2, local))
    cached = _COMMUTE_CACHE.get(key)
    if cached is not None:
        return cached
    from ..arrays.unitary import operation_unitary

    n = len(union)
    u1 = operation_unitary(op1.remapped(local), n)
    u2 = operation_unitary(op2.remapped(local), n)
    result = bool(np.allclose(u1 @ u2, u2 @ u1, atol=1e-10))
    _COMMUTE_CACHE[key] = result
    return result


def commutative_cancellation(
    circuit: QuantumCircuit, max_lookback: int = 32
) -> QuantumCircuit:
    """Cancel inverse pairs and merge rotations through commuting gates.

    For every operation the pass walks backwards over still-live operations:
    an identical-support inverse partner cancels both, a same-axis rotation
    merges; any other operation that *commutes* with the candidate is walked
    through, anything else stops the search.
    """
    ops: List[Optional[Operation]] = list(circuit.operations)

    def try_eliminate(idx: int) -> bool:
        op = ops[idx]
        assert op is not None
        steps = 0
        walked: List[Operation] = []
        for j in range(idx - 1, -1, -1):
            prev = ops[j]
            if prev is None:
                continue
            steps += 1
            if steps > max_lookback:
                return False
            if prev.is_barrier or prev.is_measurement:
                return False
            if (
                set(prev.qubits) == set(op.qubits)
                and prev.targets == op.targets
                and set(prev.controls) == set(op.controls)
                and prev.condition is None
                and op.condition is None
            ):
                # Moving ``op`` next to ``prev`` requires that *both* ends
                # commute with everything in between: ``op`` commuting is
                # not enough when the pair merges into a different gate
                # (e.g. op ~ rz(2*pi) ∝ -I commutes with anything, prev
                # does not).
                if all(operations_commute(prev, mid) for mid in walked):
                    try:
                        inverse = prev.gate.inverse()
                    except ValueError:
                        inverse = None
                    if inverse is not None and inverse == op.gate:
                        ops[j] = None
                        ops[idx] = None
                        return True
                    merged = _merge_rotations(prev, op)
                    if merged is not None:
                        ops[j] = None
                        ops[idx] = (
                            merged if not merged.gate.is_identity() else None
                        )
                        return True
            if operations_commute(op, prev):
                walked.append(prev)
                continue
            return False
        return False

    changed = True
    while changed:
        changed = False
        for idx in range(len(ops)):
            if ops[idx] is None:
                continue
            op = ops[idx]
            if op.is_barrier or op.is_measurement or op.condition is not None:
                continue
            if try_eliminate(idx):
                changed = True
    out = circuit.copy()
    out.operations = [op for op in ops if op is not None]
    return out


def _merge_rotations(prev: Operation, op: Operation) -> Optional[Operation]:
    name = prev.gate.name
    if (
        name == op.gate.name
        and name in ("rx", "ry", "rz", "p", "rzz", "rxx", "ryy")
        and prev.gate.params
        and op.gate.params
    ):
        angle = prev.gate.params[0] + op.gate.params[0]
        return Operation(
            g.PARAMETRIC_GATES[name](angle), op.targets, op.controls
        )
    return None
