"""Qubit routing: SWAP insertion for limited-connectivity devices.

Implements the mapping task of the paper's compilation section: a circuit
over logical qubits becomes a circuit over physical qubits in which every
two-qubit interaction happens between coupled qubits.  Two routers are
provided: a greedy shortest-path router and a SABRE-style lookahead router
(paper ref. [18]).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.circuit import Operation, QuantumCircuit
from .coupling import CouplingMap
from .decompositions import decompose_to_two_qubit


def interaction_layout(
    circuit: QuantumCircuit, coupling: CouplingMap
) -> Dict[int, int]:
    """Heuristic initial layout from the circuit's interaction graph.

    Logical qubits that interact often are placed on physically close
    qubits: the most-connected logical qubit goes to the highest-degree
    physical qubit, then each remaining logical qubit (strongest attachment
    first) takes the free physical qubit minimizing the weighted distance to
    its already-placed partners.
    """
    lowered = decompose_to_two_qubit(circuit)
    n = lowered.num_qubits
    weight: Dict[Tuple[int, int], float] = {}
    for op in lowered.operations:
        qubits = op.qubits
        if op.is_unitary and len(qubits) == 2:
            key = (min(qubits), max(qubits))
            weight[key] = weight.get(key, 0.0) + 1.0
    strength: Dict[int, float] = {q: 0.0 for q in range(n)}
    for (a, b), w in weight.items():
        strength[a] += w
        strength[b] += w

    placed: Dict[int, int] = {}
    free_physical = set(range(coupling.num_qubits))
    order = sorted(range(n), key=lambda q: -strength[q])
    if not order:
        return {q: q for q in range(n)}
    first = order[0]
    anchor = max(free_physical, key=lambda p: len(coupling.neighbors(p)))
    placed[first] = anchor
    free_physical.discard(anchor)

    def attachment(q: int) -> float:
        total = 0.0
        for (a, b), w in weight.items():
            if a == q and b in placed:
                total += w
            elif b == q and a in placed:
                total += w
        return total

    remaining = [q for q in order[1:]]
    while remaining:
        remaining.sort(key=lambda q: -attachment(q))
        logical = remaining.pop(0)
        partners = []
        for (a, b), w in weight.items():
            if a == logical and b in placed:
                partners.append((placed[b], w))
            elif b == logical and a in placed:
                partners.append((placed[a], w))
        if partners:
            best = min(
                free_physical,
                key=lambda p: sum(
                    w * coupling.distance(p, partner) for partner, w in partners
                ),
            )
        else:
            best = min(free_physical)
        placed[logical] = best
        free_physical.discard(best)
    return placed


class RoutingResult:
    """A routed circuit plus the layouts needed to interpret it.

    ``initial_layout[l]`` / ``final_layout[l]`` give the physical qubit
    holding logical qubit ``l`` before / after execution.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        initial_layout: Dict[int, int],
        final_layout: Dict[int, int],
        swap_count: int,
    ) -> None:
        self.circuit = circuit
        self.initial_layout = dict(initial_layout)
        self.final_layout = dict(final_layout)
        self.swap_count = swap_count

    def __repr__(self) -> str:
        return (
            f"RoutingResult({len(self.circuit)} ops, {self.swap_count} swaps)"
        )


def _check_routed(circuit: QuantumCircuit, coupling: CouplingMap) -> None:
    for op in circuit.operations:
        if op.is_barrier or op.is_measurement:
            continue
        qubits = op.qubits
        if len(qubits) == 2 and not coupling.are_adjacent(*qubits):
            raise ValueError(f"op {op!r} violates the coupling map")
        if len(qubits) > 2:
            raise ValueError("routed circuits may only contain <=2-qubit ops")


def route_greedy(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Optional[Dict[int, int]] = None,
) -> RoutingResult:
    """Shortest-path SWAP insertion, one gate at a time."""
    circuit = decompose_to_two_qubit(circuit)
    n_logical = circuit.num_qubits
    if n_logical > coupling.num_qubits:
        raise ValueError("circuit does not fit on the device")
    layout = dict(initial_layout) if initial_layout else {
        l: l for l in range(n_logical)
    }
    phys_of = dict(layout)
    logical_of = {p: l for l, p in phys_of.items()}
    routed = QuantumCircuit(coupling.num_qubits, name=circuit.name + "_routed")
    routed.num_clbits = circuit.num_clbits
    swap_count = 0

    def apply_swap(pa: int, pb: int) -> None:
        nonlocal swap_count
        routed.swap(pa, pb)
        swap_count += 1
        la = logical_of.get(pa)
        lb = logical_of.get(pb)
        if la is not None:
            phys_of[la] = pb
        if lb is not None:
            phys_of[lb] = pa
        logical_of[pa], logical_of[pb] = lb, la

    for op in circuit.operations:
        if op.is_barrier:
            routed.append(op)
            continue
        qubits = op.qubits
        if len(qubits) <= 1:
            routed.append(op.remapped({q: phys_of[q] for q in qubits}))
            continue
        a, b = qubits
        pa, pb = phys_of[a], phys_of[b]
        if not coupling.are_adjacent(pa, pb):
            path = coupling.shortest_path(pa, pb)
            # Walk a towards b, stopping one hop short.
            for next_p in path[1:-1]:
                apply_swap(phys_of[a], next_p)
            pa, pb = phys_of[a], phys_of[b]
        routed.append(op.remapped({a: pa, b: pb}))
    _check_routed(routed, coupling)
    return RoutingResult(routed, layout, dict(phys_of), swap_count)


def route_sabre(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Optional[Dict[int, int]] = None,
    lookahead: int = 12,
    lookahead_weight: float = 0.5,
    seed: int = 0,
) -> RoutingResult:
    """SABRE-style lookahead routing.

    When the front two-qubit gate is not executable, every SWAP on an edge
    adjacent to a qubit of a front-layer gate is scored by the resulting
    total distance of the front layer plus a discounted distance of the next
    ``lookahead`` two-qubit gates; the best-scoring SWAP is applied.
    """
    circuit = decompose_to_two_qubit(circuit)
    rng = np.random.default_rng(seed)
    n_logical = circuit.num_qubits
    if n_logical > coupling.num_qubits:
        raise ValueError("circuit does not fit on the device")
    layout = dict(initial_layout) if initial_layout else {
        l: l for l in range(n_logical)
    }
    phys_of = dict(layout)
    logical_of = {p: l for l, p in phys_of.items()}
    routed = QuantumCircuit(coupling.num_qubits, name=circuit.name + "_routed")
    routed.num_clbits = circuit.num_clbits
    swap_count = 0

    pending: List[Operation] = [
        op for op in circuit.operations if not op.is_barrier
    ]
    position = 0

    def do_swap(pa: int, pb: int) -> None:
        nonlocal swap_count
        routed.swap(pa, pb)
        swap_count += 1
        la = logical_of.get(pa)
        lb = logical_of.get(pb)
        if la is not None:
            phys_of[la] = pb
        if lb is not None:
            phys_of[lb] = pa
        logical_of[pa], logical_of[pb] = lb, la

    def upcoming_two_qubit(start: int, count: int) -> List[Tuple[int, int]]:
        pairs = []
        idx = start
        while idx < len(pending) and len(pairs) < count:
            op = pending[idx]
            if len(op.qubits) == 2:
                pairs.append(op.qubits)
            idx += 1
        return pairs

    stall_guard = 0
    max_stall = 10 * coupling.num_qubits + 50
    last_swap: Optional[Tuple[int, int]] = None
    while position < len(pending):
        op = pending[position]
        qubits = op.qubits
        if len(qubits) <= 1:
            routed.append(op.remapped({q: phys_of[q] for q in qubits}))
            position += 1
            stall_guard = 0
            last_swap = None
            continue
        a, b = qubits
        if coupling.are_adjacent(phys_of[a], phys_of[b]):
            routed.append(op.remapped({a: phys_of[a], b: phys_of[b]}))
            position += 1
            stall_guard = 0
            last_swap = None
            continue
        # Choose the best swap.
        front = [qubits] + upcoming_two_qubit(position + 1, 3)
        future = upcoming_two_qubit(position + 1, lookahead)
        involved = {phys_of[q] for pair in front for q in pair}
        candidates = set()
        for p in involved:
            for nb in coupling.neighbors(p):
                candidates.add((min(p, nb), max(p, nb)))

        def score(edge: Tuple[int, int]) -> float:
            pa, pb = edge
            trial = dict(phys_of)
            la, lb = logical_of.get(pa), logical_of.get(pb)
            if la is not None:
                trial[la] = pb
            if lb is not None:
                trial[lb] = pa
            total = sum(
                coupling.distance(trial[x], trial[y]) for x, y in front
            )
            if future:
                total += lookahead_weight * sum(
                    coupling.distance(trial[x], trial[y]) for x, y in future
                ) / len(future)
            return total

        current = sum(
            coupling.distance(phys_of[x], phys_of[y]) for x, y in front
        )
        if future:
            current += lookahead_weight * sum(
                coupling.distance(phys_of[x], phys_of[y]) for x, y in future
            ) / len(future)
        # Never undo the swap we just made — that is the classic SABRE
        # oscillation, where heuristic and fallback fight each other.
        candidates.discard(last_swap)
        scored = [(score(edge), rng.random(), edge) for edge in candidates]
        scored.sort()
        if scored and scored[0][0] < current - 1e-9:
            chosen = scored[0][2]
        else:
            # No swap helps the heuristic: take a guaranteed-progress step
            # along the shortest path of the blocking gate.
            path = coupling.shortest_path(phys_of[a], phys_of[b])
            hop = (min(phys_of[a], path[1]), max(phys_of[a], path[1]))
            chosen = hop
        do_swap(*chosen)
        last_swap = chosen
        stall_guard += 1
        if stall_guard > max_stall:
            # Fall back to a deterministic walk to guarantee progress.
            path = coupling.shortest_path(phys_of[a], phys_of[b])
            for next_p in path[1:-1]:
                do_swap(phys_of[a], next_p)
            routed.append(op.remapped({a: phys_of[a], b: phys_of[b]}))
            position += 1
            stall_guard = 0
    _check_routed(routed, coupling)
    return RoutingResult(routed, layout, dict(phys_of), swap_count)


def undo_layout_statevector(
    state: "np.ndarray",
    result: RoutingResult,
    num_logical: int,
) -> "np.ndarray":
    """Re-index a routed circuit's output state back to logical qubits.

    Logical qubit ``l`` lives on physical qubit ``final_layout[l]``; the
    returned vector is over logical qubits only (ancilla/uninvolved physical
    qubits must be in |0>).
    """
    n_phys = int(len(state)).bit_length() - 1
    logical_state = np.zeros(1 << num_logical, dtype=np.complex128)
    final = result.final_layout
    used = set(final.values())
    for phys_index in range(len(state)):
        amp = state[phys_index]
        if amp == 0:
            continue
        rest = 0
        for p in range(n_phys):
            if p not in used and (phys_index >> p) & 1:
                rest = 1
                break
        if rest:
            raise ValueError("unused physical qubit left the |0> state")
        logical_index = 0
        for l in range(num_logical):
            if (phys_index >> final[l]) & 1:
                logical_index |= 1 << l
        logical_state[logical_index] = amp
    return logical_state
