"""The end-to-end compilation pipeline (paper Sec. I, "Compilation").

``compile_circuit`` builds a preset :class:`~repro.compile.passmanager.PassManager`
pipeline for the requested ``optimization_level`` and runs it: optional
optimization, translation into a native gate basis, SWAP routing onto
the coupling map, cleanup, and (level 3) numeric resynthesis — mirroring
the structure of production compilers while staying fully
self-contained.

Preset levels:

=====  ==================================================================
0      lower to basis (+ route)
1      + peephole fixed-point loops before and after lowering/routing
2      + ZX-calculus optimization up front
3      + numeric resynthesis (:class:`~repro.compile.resynth.Collapse1qRuns`
       and :class:`~repro.compile.resynth.Resynth2qBlocks`) after each
       lowering round
=====  ==================================================================

Levels 0–2 reproduce the legacy fixed pipeline gate-for-gate.  Unlike
that pipeline, measurements are no longer dropped: trailing measurements
are re-appended after compilation, remapped through the final layout.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..circuits.circuit import Operation, QuantumCircuit
from ..obs import trace_session
from ..obs import trace as obs_trace
from .coupling import CouplingMap
from .decompositions import BASIS_CX_RZ_RY
from .passes import (
    ChooseLayout,
    DecomposeToBasis,
    RecordSize,
    Route,
    ZXOptimize,
    peephole_loop,
)
from .passmanager import PassManager, PassManagerResult
from .resynth import Collapse1qRuns, Resynth2qBlocks

PRESET_LEVELS = (0, 1, 2, 3)


class CompilationResult:
    """Compiled circuit plus layouts, statistics, and pass records.

    ``stats`` keeps the legacy scalar keys (``input_ops``,
    ``input_two_qubit``, ``post_basis_ops``, ``swaps``, ``output_ops``,
    ``output_two_qubit``) and adds ``stats["passes"]``: one record per
    scheduled pass with before/after gate, depth, and two-qubit counts
    plus elapsed time (skipped passes are marked).  With ``trace=True``
    the full :mod:`repro.obs` span tree lands in
    ``metadata["report"]``.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        initial_layout: Dict[int, int],
        final_layout: Dict[int, int],
        stats: Dict[str, Any],
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.circuit = circuit
        self.initial_layout = initial_layout
        self.final_layout = final_layout
        self.stats = stats
        self.metadata = metadata or {}

    def __repr__(self) -> str:
        scalars = {
            k: v for k, v in self.stats.items() if not isinstance(v, list)
        }
        return f"CompilationResult({len(self.circuit)} ops, stats={scalars})"


def _add_peephole(pm: PassManager) -> None:
    passes, predicate = peephole_loop()
    pm.append(passes, do_while=predicate, max_iterations=20, name="peephole")


def _add_resynth(pm: PassManager, basis: frozenset) -> None:
    pm.append(
        [Collapse1qRuns(basis), Resynth2qBlocks(basis)], name="resynth"
    )
    _add_peephole(pm)


def build_preset(
    optimization_level: int = 1,
    basis: frozenset = BASIS_CX_RZ_RY,
    coupling: Optional[CouplingMap] = None,
    router: str = "sabre",
    layout: str = "interaction",
    seed: int = 0,
) -> PassManager:
    """The preset pipeline behind :func:`compile_circuit`.

    Returned as a plain :class:`~repro.compile.passmanager.PassManager`
    so callers can inspect, extend, or re-run it on other circuits.
    """
    if optimization_level not in PRESET_LEVELS:
        raise ValueError(
            f"unknown optimization level {optimization_level!r}; "
            f"presets are {PRESET_LEVELS}"
        )
    pm = PassManager()
    if optimization_level >= 2:
        pm.append(ZXOptimize(), name="zx")
    if optimization_level >= 1:
        _add_peephole(pm)
    pm.append(DecomposeToBasis(basis), name="lower")
    if optimization_level >= 1:
        _add_peephole(pm)
    if optimization_level >= 3:
        _add_resynth(pm, basis)
    pm.append(RecordSize("post_basis_ops"), name="record")
    if coupling is not None:
        layout_pass = ChooseLayout(coupling, strategy=layout)
        pm.append(layout_pass, name="layout")
        pm.append(
            Route(coupling, router=router, seed=seed, requires=(layout_pass,)),
            name="route",
        )
        # Routing introduces SWAP gates outside the basis: lower again.
        pm.append(DecomposeToBasis(basis), name="lower-routed")
        if optimization_level >= 1:
            _add_peephole(pm)
        if optimization_level >= 3:
            # Resynthesis is coupling-safe: blocks live on routed pairs.
            _add_resynth(pm, basis)
    return pm


def build_optimization_pipeline(
    optimization_level: int, basis: Optional[frozenset] = None
) -> PassManager:
    """Optimization-only preset (no lowering, no routing).

    This is the pipeline the simulation dispatcher runs for
    ``SimOptions.optimization_level``: it never forces a gate basis, so
    backends keep executing the circuit's native (possibly raw-matrix)
    gates; level 3's resynthesis emits ``unitary1q`` locals directly.
    """
    if optimization_level not in PRESET_LEVELS:
        raise ValueError(
            f"unknown optimization level {optimization_level!r}; "
            f"presets are {PRESET_LEVELS}"
        )
    pm = PassManager()
    if optimization_level >= 2:
        pm.append(ZXOptimize(), name="zx")
    if optimization_level >= 1:
        _add_peephole(pm)
    if optimization_level >= 3:
        pm.append(
            [Collapse1qRuns(basis), Resynth2qBlocks(basis)], name="resynth"
        )
        _add_peephole(pm)
    return pm


def _trailing_measurements(circuit: QuantumCircuit) -> List[Operation]:
    """The circuit's final measurements, validated as compile-safe.

    The legacy pipeline silently dropped measurements.  Now trailing
    measurements survive compilation (re-appended remapped through the
    final layout); circuits the compiler cannot preserve — feed-forward
    conditions, or mid-circuit measurements followed by more gates on
    the measured qubit — raise instead of miscompiling.
    """
    measurements: List[Operation] = []
    measured: set = set()
    for op in circuit.operations:
        if op.condition is not None:
            raise ValueError(
                "cannot compile dynamic circuits: classically-conditioned "
                "operations are not supported by compile_circuit"
            )
        if op.is_measurement:
            measurements.append(op)
            measured.update(op.targets)
            continue
        if op.is_barrier:
            continue
        overlap = measured.intersection(op.qubits)
        if overlap:
            raise ValueError(
                "cannot compile mid-circuit measurements: qubits "
                f"{sorted(overlap)} are measured and then operated on"
            )
    return measurements


def compile_circuit(
    circuit: QuantumCircuit,
    coupling: Optional[CouplingMap] = None,
    basis: frozenset = BASIS_CX_RZ_RY,
    optimization_level: int = 1,
    router: str = "sabre",
    layout: str = "interaction",
    seed: int = 0,
    trace: bool = False,
) -> CompilationResult:
    """Compile ``circuit`` for a device.

    optimization_level 0: lower to basis + route only;
    1: adds peephole optimization before and after routing;
    2: additionally runs the ZX-calculus optimizer first;
    3: additionally resynthesizes 1q runs (Euler angles) and 2q blocks
    (Cartan/KAK, at most 3 CX per block).
    ``layout`` picks the initial placement: ``"trivial"`` (identity) or
    ``"interaction"`` (interaction-graph heuristic).  ``trace=True``
    records every pass in a :mod:`repro.obs` session and attaches the
    report as ``result.metadata["report"]``.
    """
    pm = build_preset(
        optimization_level=optimization_level,
        basis=basis,
        coupling=coupling,
        router=router,
        layout=layout,
        seed=seed,
    )
    measurements = _trailing_measurements(circuit)
    stats: Dict[str, Any] = {
        "input_ops": len(circuit),
        "input_two_qubit": circuit.two_qubit_gate_count(),
    }
    work = circuit.without_measurements()
    metadata: Dict[str, Any] = {}
    with trace_session(trace) as session:
        with obs_trace.span(
            "compile", level=optimization_level, ops=len(work)
        ):
            result: PassManagerResult = pm.run(work)
        if session is not None:
            metadata["report"] = session.report()
    compiled = result.circuit
    properties = result.properties
    stats["post_basis_ops"] = properties.get("post_basis_ops", len(compiled))
    stats["passes"] = result.records
    if coupling is None:
        identity = {q: q for q in range(compiled.num_qubits)}
        initial, final = identity, dict(identity)
        stats["swaps"] = 0
    else:
        initial = properties["layout"]
        final = properties["final_layout"]
        stats["swaps"] = properties["swaps"]
        compiled.name = circuit.name + "_compiled"
    if measurements:
        compiled = compiled.copy()
        compiled.num_clbits = max(compiled.num_clbits, circuit.num_clbits)
        for op in measurements:
            compiled.append(op.remapped(final))
    stats["output_ops"] = len(compiled)
    stats["output_two_qubit"] = compiled.two_qubit_gate_count()
    return CompilationResult(compiled, initial, final, stats, metadata)
