"""The end-to-end compilation pipeline (paper Sec. I, "Compilation").

``compile_circuit`` lowers a circuit to a device: optional optimization,
translation into a native gate basis, SWAP routing onto the coupling map,
and a final cleanup — mirroring the structure of production compilers while
staying fully self-contained.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..circuits.circuit import QuantumCircuit
from .coupling import CouplingMap
from .decompositions import BASIS_CX_RZ_RY, decompose_to_basis
from .optimize import optimize
from .routing import (
    interaction_layout,
    route_greedy,
    route_sabre,
)
from .zx_opt import zx_optimize


class CompilationResult:
    """Compiled circuit plus layouts and bookkeeping statistics."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        initial_layout: Dict[int, int],
        final_layout: Dict[int, int],
        stats: Dict[str, int],
    ) -> None:
        self.circuit = circuit
        self.initial_layout = initial_layout
        self.final_layout = final_layout
        self.stats = stats

    def __repr__(self) -> str:
        return f"CompilationResult({len(self.circuit)} ops, stats={self.stats})"


def compile_circuit(
    circuit: QuantumCircuit,
    coupling: Optional[CouplingMap] = None,
    basis: frozenset = BASIS_CX_RZ_RY,
    optimization_level: int = 1,
    router: str = "sabre",
    layout: str = "interaction",
    seed: int = 0,
) -> CompilationResult:
    """Compile ``circuit`` for a device.

    optimization_level 0: lower to basis + route only;
    1: adds peephole optimization before and after routing;
    2: additionally runs the ZX-calculus optimizer first.
    ``layout`` picks the initial placement: ``"trivial"`` (identity) or
    ``"interaction"`` (interaction-graph heuristic).
    """
    stats: Dict[str, int] = {
        "input_ops": len(circuit),
        "input_two_qubit": circuit.two_qubit_gate_count(),
    }
    work = circuit.without_measurements()
    if optimization_level >= 2:
        work = zx_optimize(work).optimized
    if optimization_level >= 1:
        work = optimize(work)
    work = decompose_to_basis(work, basis)
    if optimization_level >= 1:
        work = optimize(work)
    stats["post_basis_ops"] = len(work)

    if coupling is None:
        identity = {q: q for q in range(work.num_qubits)}
        stats["swaps"] = 0
        stats["output_ops"] = len(work)
        stats["output_two_qubit"] = work.two_qubit_gate_count()
        return CompilationResult(work, identity, identity, stats)

    if layout == "interaction":
        initial = interaction_layout(work, coupling)
    elif layout == "trivial":
        initial = {q: q for q in range(work.num_qubits)}
    else:
        raise ValueError(f"unknown layout strategy '{layout}'")
    if router == "sabre":
        routing = route_sabre(work, coupling, initial_layout=initial, seed=seed)
    elif router == "greedy":
        routing = route_greedy(work, coupling, initial_layout=initial)
    else:
        raise ValueError(f"unknown router '{router}'")
    routed = routing.circuit
    # Routing introduces SWAP gates outside the basis: lower them again.
    routed = decompose_to_basis(routed, basis)
    if optimization_level >= 1:
        routed = optimize(routed)
    stats["swaps"] = routing.swap_count
    stats["output_ops"] = len(routed)
    stats["output_two_qubit"] = routed.two_qubit_gate_count()
    routed.name = circuit.name + "_compiled"
    return CompilationResult(
        routed, routing.initial_layout, routing.final_layout, stats
    )
