"""Compilation: decomposition, basis translation, routing, optimization."""

from . import coupling
from .compiler import (
    CompilationResult,
    build_optimization_pipeline,
    build_preset,
    compile_circuit,
)
from .coupling import CouplingMap
from .decompositions import (
    BASIS_CX_RZ_RY,
    BASIS_CX_U,
    BASIS_CZ_RZ_RY,
    BASIS_IBM,
    decompose_mcp_parity,
    decompose_mcx_with_ancillas,
    decompose_to_basis,
    decompose_to_two_qubit,
    euler_zyz,
)
from .fusion import fuse_gates, fused_matrix, fusion_report
from .kak import decompose_two_qubit_unitary, kak_decompose
from .commutation import commutative_cancellation, operations_commute
from .optimize import cancel_inverses, merge_rotations, optimize, remove_identities
from .passes import (
    CancelInverses,
    ChooseLayout,
    CommutativeCancellation,
    DecomposeToBasis,
    FixedPoint,
    FuseGates,
    MergeRotations,
    RecordSize,
    RemoveIdentities,
    Route,
    Size,
    ZXOptimize,
)
from .passmanager import (
    AnalysisPass,
    BasePass,
    PassManager,
    PassManagerResult,
    PropertySet,
    Stage,
    TransformationPass,
)
from .resynth import (
    Collapse1qRuns,
    Resynth2qBlocks,
    synthesize_canonical,
    synthesize_two_qubit,
)
from .routing import (
    RoutingResult,
    interaction_layout,
    route_greedy,
    route_sabre,
    undo_layout_statevector,
)
from .zx_opt import ZXOptimizationReport, zx_optimize, zx_t_count

__all__ = [
    "AnalysisPass",
    "BASIS_CX_RZ_RY",
    "BASIS_CX_U",
    "BASIS_CZ_RZ_RY",
    "BASIS_IBM",
    "BasePass",
    "CancelInverses",
    "ChooseLayout",
    "Collapse1qRuns",
    "CommutativeCancellation",
    "CompilationResult",
    "CouplingMap",
    "DecomposeToBasis",
    "FixedPoint",
    "FuseGates",
    "MergeRotations",
    "PassManager",
    "PassManagerResult",
    "PropertySet",
    "RecordSize",
    "RemoveIdentities",
    "Resynth2qBlocks",
    "Route",
    "RoutingResult",
    "Size",
    "Stage",
    "TransformationPass",
    "ZXOptimizationReport",
    "ZXOptimize",
    "build_optimization_pipeline",
    "build_preset",
    "cancel_inverses",
    "commutative_cancellation",
    "compile_circuit",
    "coupling",
    "decompose_mcp_parity",
    "decompose_mcx_with_ancillas",
    "decompose_to_basis",
    "decompose_to_two_qubit",
    "decompose_two_qubit_unitary",
    "fuse_gates",
    "fused_matrix",
    "fusion_report",
    "kak_decompose",
    "euler_zyz",
    "interaction_layout",
    "merge_rotations",
    "operations_commute",
    "optimize",
    "remove_identities",
    "route_greedy",
    "route_sabre",
    "synthesize_canonical",
    "synthesize_two_qubit",
    "undo_layout_statevector",
    "zx_optimize",
    "zx_t_count",
]
