"""Cartan (KAK) decomposition of arbitrary two-qubit unitaries.

Any ``U in U(4)`` factors as ``(A1 ⊗ A2) · N(c1,c2,c3) · (B1 ⊗ B2)`` with
single-qubit gates ``A*, B*`` and the canonical interaction
``N = exp(i(c1 XX + c2 YY + c3 ZZ))``.  The construction runs through the
magic basis, where two-qubit gates become complex symmetric matrices and
local gates become real orthogonal ones.

This makes the compiler's basis translation *total*: any raw ``unitary2q``
gate (e.g. from quantum-volume circuits) lowers to CX + single-qubit gates.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Tuple

import numpy as np

from ..circuits import gates as g
from ..circuits.circuit import Operation

# Magic basis (Bell-ish basis in which SO(4) = SU(2) x SU(2)).
_B = np.array(
    [
        [1, 0, 0, 1j],
        [0, 1j, 1, 0],
        [0, 1j, -1, 0],
        [1, 0, 0, -1j],
    ],
    dtype=np.complex128,
) / math.sqrt(2)
_B_DAG = _B.conj().T

_XX = np.kron(np.array([[0, 1], [1, 0]]), np.array([[0, 1], [1, 0]]))
_YY = np.kron(np.array([[0, -1j], [1j, 0]]), np.array([[0, -1j], [1j, 0]]))
_ZZ = np.kron(np.diag([1, -1]), np.diag([1, -1]))

# In the magic basis XX/YY/ZZ are diagonal; cache their diagonals.
_DIAG_XX = np.real(np.diag(_B_DAG @ _XX @ _B))
_DIAG_YY = np.real(np.diag(_B_DAG @ _YY @ _B))
_DIAG_ZZ = np.real(np.diag(_B_DAG @ _ZZ @ _B))


class KAKDecomposition:
    """``U = phase * (A1 ⊗ A2) @ N(c) @ (B1 ⊗ B2)``."""

    def __init__(
        self,
        phase: complex,
        a1: np.ndarray,
        a2: np.ndarray,
        b1: np.ndarray,
        b2: np.ndarray,
        coefficients: Tuple[float, float, float],
    ) -> None:
        self.phase = phase
        self.a1 = a1
        self.a2 = a2
        self.b1 = b1
        self.b2 = b2
        self.coefficients = coefficients

    def canonical_matrix(self) -> np.ndarray:
        c1, c2, c3 = self.coefficients
        from scipy.linalg import expm

        return expm(1j * (c1 * _XX + c2 * _YY + c3 * _ZZ))

    def reconstruct(self) -> np.ndarray:
        return (
            self.phase
            * np.kron(self.a1, self.a2)
            @ self.canonical_matrix()
            @ np.kron(self.b1, self.b2)
        )


def _simultaneous_orthogonal_diagonalization(m: np.ndarray) -> np.ndarray:
    """Real orthogonal ``Q`` with ``Q.T @ m @ Q`` diagonal.

    ``m`` is unitary and complex symmetric, so its real and imaginary parts
    are commuting real-symmetric matrices; a random mixture breaks the
    degeneracies and one eigen-decomposition diagonalizes both.
    """
    real = np.real(m)
    imag = np.imag(m)
    rng = np.random.default_rng(7)
    for _ in range(24):
        lam = rng.normal()
        _, q = np.linalg.eigh(real + lam * imag)
        check = q.T @ m @ q
        if np.allclose(check - np.diag(np.diag(check)), 0, atol=1e-9):
            return q
    raise RuntimeError("simultaneous diagonalization failed to converge")


def _nearest_kron_factors(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split an exact tensor product ``A ⊗ B`` (2x2 each) back into factors."""
    reshaped = matrix.reshape(2, 2, 2, 2).transpose(0, 2, 1, 3).reshape(4, 4)
    u, s, vh = np.linalg.svd(reshaped)
    a = u[:, 0].reshape(2, 2) * math.sqrt(s[0])
    b = vh[0, :].reshape(2, 2) * math.sqrt(s[0])
    # Normalize each factor to be unitary with det adjusted into `a`.
    det_b = np.linalg.det(b)
    b = b / np.sqrt(det_b)
    a = a * np.sqrt(det_b)
    return a, b


def kak_decompose(matrix: np.ndarray) -> KAKDecomposition:
    """Cartan decomposition of a 4x4 unitary."""
    matrix = np.asarray(matrix, dtype=np.complex128)
    if matrix.shape != (4, 4):
        raise ValueError("KAK decomposition needs a 4x4 matrix")
    if not np.allclose(matrix @ matrix.conj().T, np.eye(4), atol=1e-9):
        raise ValueError("matrix is not unitary")
    # Into the magic basis, stripped to determinant one.
    v = _B_DAG @ matrix @ _B
    det = np.linalg.det(v)
    global_phase = det ** 0.25
    v = v / global_phase

    m = v.T @ v
    q2 = _simultaneous_orthogonal_diagonalization(m)
    if np.linalg.det(q2) < 0:
        q2 = q2.copy()
        q2[:, 0] = -q2[:, 0]
    d = np.diag(q2.T @ m @ q2)
    theta = np.angle(d)  # d = e^{i theta}
    # v = q1 @ exp(i Theta / 2) @ q2.T  with q1 real orthogonal:
    f = np.diag(np.exp(-0.5j * theta))
    q1 = v @ q2 @ f
    assert np.allclose(np.imag(q1), 0, atol=1e-7), "q1 must be real orthogonal"
    q1 = np.real(q1)
    if np.linalg.det(q1) < 0:
        # Push the sign flip into the diagonal phase (add pi to one angle).
        q1 = q1.copy()
        q1[:, 0] = -q1[:, 0]
        theta = theta.copy()
        theta[0] += 2 * math.pi  # e^{i theta/2} flips sign
    # Solve theta/2 = c1*diag(XX) + c2*diag(YY) + c3*diag(ZZ) + phi*1.
    basis = np.stack([_DIAG_XX, _DIAG_YY, _DIAG_ZZ, np.ones(4)], axis=1)
    solution, residual, _, _ = np.linalg.lstsq(basis, theta / 2.0, rcond=None)
    c1, c2, c3, phi = solution
    fit = basis @ solution
    if not np.allclose(fit, theta / 2.0, atol=1e-8):
        raise RuntimeError("canonical-parameter fit failed")

    a1, a2 = _nearest_kron_factors(_B @ q1 @ _B_DAG)
    b1, b2 = _nearest_kron_factors(_B @ q2.T @ _B_DAG)
    phase = global_phase * cmath.exp(1j * phi)
    decomposition = KAKDecomposition(phase, a1, a2, b1, b2, (c1, c2, c3))
    rebuilt = decomposition.reconstruct()
    if not np.allclose(rebuilt, matrix, atol=1e-7):
        raise RuntimeError("KAK reconstruction mismatch")
    return decomposition


def decompose_two_qubit_unitary(
    matrix: np.ndarray, qubit_low: int, qubit_high: int
) -> List[Operation]:
    """Exact circuit for an arbitrary two-qubit unitary.

    ``matrix`` follows the library convention: ``qubit_low`` is the less
    significant qubit.  Emits 1q unitaries plus rxx/ryy/rzz interactions
    (which lower to 2 CX each through the named decompositions); the global
    phase is kept exact via ``gphase``.
    """
    decomposition = kak_decompose(matrix)
    c1, c2, c3 = decomposition.coefficients
    ops: List[Operation] = []
    # Circuit order: B side first.  Tensor factor 1 acts on the *high* qubit.
    ops.append(Operation(g.Gate("unitary1q", 1, decomposition.b1), [qubit_high]))
    ops.append(Operation(g.Gate("unitary1q", 1, decomposition.b2), [qubit_low]))
    # exp(i c P⊗P) = rPP(-2c); XX/YY/ZZ terms commute.
    if abs(c1) > 1e-12:
        ops.append(Operation(g.rxx(-2 * c1), [qubit_low, qubit_high]))
    if abs(c2) > 1e-12:
        ops.append(Operation(g.ryy(-2 * c2), [qubit_low, qubit_high]))
    if abs(c3) > 1e-12:
        ops.append(Operation(g.rzz(-2 * c3), [qubit_low, qubit_high]))
    ops.append(Operation(g.Gate("unitary1q", 1, decomposition.a1), [qubit_high]))
    ops.append(Operation(g.Gate("unitary1q", 1, decomposition.a2), [qubit_low]))
    angle = cmath.phase(decomposition.phase)
    if abs(angle) > 1e-12:
        ops.append(Operation(g.gphase(angle), []))
    return ops
