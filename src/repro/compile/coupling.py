"""Device coupling maps: the connectivity constraints compilation targets.

The paper's compilation task (Sec. I) maps circuits onto devices with
"limited connectivity"; these synthetic topologies stand in for real
backends (line/ring ion-trap-style chains, grid and heavy-hex
superconducting lattices, the IBM QX5 layout).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx


class CouplingMap:
    """An undirected connectivity graph over physical qubits."""

    def __init__(self, num_qubits: int, edges: Iterable[Tuple[int, int]]) -> None:
        self.num_qubits = num_qubits
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(num_qubits))
        for a, b in edges:
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise ValueError(f"edge ({a}, {b}) out of range")
            if a == b:
                raise ValueError("self-coupling is not allowed")
            self.graph.add_edge(a, b)
        if num_qubits and not nx.is_connected(self.graph):
            raise ValueError("coupling map must be connected")
        self._dist: Optional[Dict[int, Dict[int, int]]] = None

    @property
    def edges(self) -> List[Tuple[int, int]]:
        return [(min(a, b), max(a, b)) for a, b in self.graph.edges]

    def are_adjacent(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def _distances(self) -> Dict[int, Dict[int, int]]:
        if self._dist is None:
            self._dist = {
                src: dict(lengths)
                for src, lengths in nx.all_pairs_shortest_path_length(self.graph)
            }
        return self._dist

    def distance(self, a: int, b: int) -> int:
        return self._distances()[a][b]

    def shortest_path(self, a: int, b: int) -> List[int]:
        return nx.shortest_path(self.graph, a, b)

    def neighbors(self, q: int) -> List[int]:
        return list(self.graph.neighbors(q))

    def __repr__(self) -> str:
        return f"CouplingMap({self.num_qubits} qubits, {len(self.edges)} edges)"


def line(num_qubits: int) -> CouplingMap:
    """A 1-D chain: the canonical worst case for routing overhead."""
    return CouplingMap(num_qubits, [(i, i + 1) for i in range(num_qubits - 1)])


def ring(num_qubits: int) -> CouplingMap:
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return CouplingMap(num_qubits, edges)


def grid(rows: int, cols: int) -> CouplingMap:
    """A rows x cols lattice (superconducting-style)."""
    def index(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((index(r, c), index(r, c + 1)))
            if r + 1 < rows:
                edges.append((index(r, c), index(r + 1, c)))
    return CouplingMap(rows * cols, edges)


def star(num_qubits: int) -> CouplingMap:
    """Qubit 0 couples to everything (trapped-ion-bus caricature)."""
    return CouplingMap(num_qubits, [(0, i) for i in range(1, num_qubits)])


def fully_connected(num_qubits: int) -> CouplingMap:
    edges = [
        (a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)
    ]
    return CouplingMap(num_qubits, edges)


def ibm_qx5() -> CouplingMap:
    """The 16-qubit IBM QX5 layout (undirected; paper ref. [15] target)."""
    edges = [
        (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7),
        (8, 9), (9, 10), (10, 11), (11, 12), (12, 13), (13, 14), (14, 15),
        (0, 15), (1, 14), (2, 13), (3, 12), (4, 11), (5, 10), (6, 9), (7, 8),
    ]
    return CouplingMap(16, edges)


def heavy_hex(distance: int = 3) -> CouplingMap:
    """A small heavy-hex-like lattice (IBM Falcon style, simplified).

    Built as a brick pattern of degree <= 3 vertices; ``distance`` controls
    the size (27 qubits at the default, mirroring the Falcon r5 devices).
    """
    if distance == 3:
        edges = [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9),
            (0, 10), (4, 11), (8, 12),
            (10, 13), (11, 17), (12, 21),
            (13, 14), (14, 15), (15, 16), (16, 17), (17, 18), (18, 19),
            (19, 20), (20, 21), (21, 22), (22, 23),
            (15, 24), (19, 25), (23, 26),
        ]
        return CouplingMap(27, edges)
    raise ValueError("only distance=3 is provided")


NAMED_TOPOLOGIES = {
    "line": line,
    "ring": ring,
    "star": star,
    "full": fully_connected,
}
