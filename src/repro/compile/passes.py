"""Concrete compiler passes wrapping the existing transformations.

Each pass is a thin declaration layer over the battle-tested functions in
:mod:`repro.compile.optimize`, :mod:`repro.compile.commutation`,
:mod:`repro.compile.zx_opt`, :mod:`repro.compile.decompositions`,
:mod:`repro.compile.routing`, and :mod:`repro.compile.fusion` — the
scheduler (:mod:`repro.compile.passmanager`) supplies requirement
resolution, validity-based skipping, and fixed-point control flow, while
the numerics stay where they were.  The preset pipelines built from
these passes reproduce the legacy fixed pipeline gate-for-gate at
optimization levels 0–2.
"""

from __future__ import annotations

from typing import Set, Tuple

from ..circuits.circuit import QuantumCircuit
from .commutation import commutative_cancellation
from .coupling import CouplingMap
from .decompositions import decompose_to_basis
from .optimize import cancel_inverses, merge_rotations, remove_identities
from .passmanager import AnalysisPass, PropertySet, TransformationPass
from .routing import interaction_layout, route_greedy, route_sabre
from .zx_opt import zx_optimize

# Properties about *bookkeeping* (layouts, recorded statistics) survive
# circuit rewrites that stay inside the current basis; only properties
# derived from the exact operation list ("size") are dropped.
STRUCTURAL = frozenset(
    {"basis", "layout", "final_layout", "swaps", "post_basis_ops"}
)


# -- analysis -----------------------------------------------------------------


class Size(AnalysisPass):
    """Record the current operation count as ``properties["size"]``."""

    provides = ("size",)

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        properties["size"] = len(circuit)


class FixedPoint(AnalysisPass):
    """Compare a recorded property against its current circuit value.

    Placed at the end of a ``do_while`` stage whose opener recorded
    ``properties[key]``: sets ``properties[f"{key}_fixed"]`` true when
    the value did not change across the stage body, terminating the
    loop.  Always re-runs (a stale verdict would wedge the loop).
    """

    def __init__(self, key: str = "size") -> None:
        self.key = key
        self.provides = (f"{key}_fixed",)

    @property
    def name(self) -> str:
        return f"FixedPoint[{self.key}]"

    def already_satisfied(self, circuit, properties, valid) -> bool:
        return False

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        properties[f"{self.key}_fixed"] = (
            properties.get(self.key) == len(circuit)
        )


class RecordSize(AnalysisPass):
    """Snapshot the operation count under a named property (once).

    Used for ``post_basis_ops``: the property is preserved by every
    later pass, so the snapshot keeps the value at the point in the
    pipeline where it was scheduled.
    """

    def __init__(self, key: str) -> None:
        self.key = key
        self.provides = (key,)

    @property
    def name(self) -> str:
        return f"RecordSize[{self.key}]"

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        properties[self.key] = len(circuit)


class ChooseLayout(AnalysisPass):
    """Pick the initial logical-to-physical placement.

    ``strategy="interaction"`` uses the interaction-graph heuristic;
    ``"trivial"`` is the identity placement.
    """

    provides = ("layout",)

    def __init__(
        self, coupling: CouplingMap, strategy: str = "interaction"
    ) -> None:
        if strategy not in ("interaction", "trivial"):
            raise ValueError(f"unknown layout strategy '{strategy}'")
        self.coupling = coupling
        self.strategy = strategy

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> None:
        if self.strategy == "interaction":
            properties["layout"] = interaction_layout(circuit, self.coupling)
        else:
            properties["layout"] = {
                q: q for q in range(circuit.num_qubits)
            }


# -- peephole transformations -------------------------------------------------


class RemoveIdentities(TransformationPass):
    preserves = STRUCTURAL

    def run(self, circuit, properties):
        return remove_identities(circuit)


class CancelInverses(TransformationPass):
    preserves = STRUCTURAL

    def run(self, circuit, properties):
        return cancel_inverses(circuit)


class MergeRotations(TransformationPass):
    preserves = STRUCTURAL

    def run(self, circuit, properties):
        return merge_rotations(circuit)


class CommutativeCancellation(TransformationPass):
    preserves = STRUCTURAL

    def __init__(self, max_lookback: int = 32) -> None:
        self.max_lookback = max_lookback

    def run(self, circuit, properties):
        return commutative_cancellation(
            circuit, max_lookback=self.max_lookback
        )


# -- structure-changing transformations ---------------------------------------


class ZXOptimize(TransformationPass):
    """ZX-calculus optimization; records the rewrite summary."""

    preserves = frozenset(
        {"layout", "final_layout", "swaps", "post_basis_ops"}
    )

    def run(self, circuit, properties):
        report = zx_optimize(circuit)
        properties["zx_summary"] = report.summary()
        return report.optimized


class DecomposeToBasis(TransformationPass):
    """Lower everything to the target gate basis.

    Provides ``"basis"`` (the frozenset itself goes into the property
    set) and is skipped when the circuit is already lowered to the same
    basis — e.g. after a routing round that inserted no out-of-basis
    gates.
    """

    provides = ("basis",)
    preserves = frozenset(
        {"layout", "final_layout", "swaps", "post_basis_ops"}
    )

    def __init__(self, basis: frozenset) -> None:
        self.basis = basis

    def already_satisfied(
        self,
        circuit: QuantumCircuit,
        properties: PropertySet,
        valid: Set[str],
    ) -> bool:
        return "basis" in valid and properties.get("basis") == self.basis

    def run(self, circuit, properties):
        properties["basis"] = self.basis
        return decompose_to_basis(circuit, self.basis)


class Route(TransformationPass):
    """SWAP-route onto the coupling map from the chosen initial layout.

    Requires a :class:`ChooseLayout` (resolved automatically when its
    ``"layout"`` property is not valid).  Invalidates ``"basis"``: the
    inserted SWAP gates need another lowering round.
    """

    provides = ("final_layout", "swaps")
    preserves = frozenset({"layout", "post_basis_ops"})
    invalidates = ("basis",)

    def __init__(
        self,
        coupling: CouplingMap,
        router: str = "sabre",
        seed: int = 0,
        requires: Tuple = (),
    ) -> None:
        if router not in ("sabre", "greedy"):
            raise ValueError(f"unknown router '{router}'")
        self.coupling = coupling
        self.router = router
        self.seed = seed
        self.requires = tuple(requires)

    def run(self, circuit, properties):
        initial = properties["layout"]
        if self.router == "sabre":
            routing = route_sabre(
                circuit,
                self.coupling,
                initial_layout=initial,
                seed=self.seed,
            )
        else:
            routing = route_greedy(
                circuit, self.coupling, initial_layout=initial
            )
        properties["final_layout"] = routing.final_layout
        properties["swaps"] = routing.swap_count
        # The router may refine the placement; keep the property current.
        properties["layout"] = routing.initial_layout
        return routing.circuit


class FuseGates(TransformationPass):
    """Gate fusion as a schedulable pass (simulation pipelines).

    Not part of the device presets — fused matrices are not basis gates —
    but lets simulation-oriented pipelines express the registry
    pre-pass as a scheduled stage.
    """

    preserves = frozenset(
        {"layout", "final_layout", "swaps", "post_basis_ops"}
    )

    def __init__(self, max_fused_qubits: int = 2) -> None:
        self.max_fused_qubits = max_fused_qubits

    def run(self, circuit, properties):
        from .fusion import fuse_gates

        return fuse_gates(
            circuit, max_fused_qubits=self.max_fused_qubits
        )


def peephole_loop(
    commutation: bool = True, max_iterations: int = 20
) -> Tuple:
    """The standard peephole fixed-point stage body + predicate.

    Returns ``(passes, do_while)`` reproducing
    :func:`repro.compile.optimize.optimize` exactly: each iteration
    records the entry size, runs the four peepholes in the legacy
    order, and stops when an iteration leaves the size unchanged.
    """
    passes = [
        Size(),
        RemoveIdentities(),
        CancelInverses(),
        MergeRotations(),
    ]
    if commutation:
        passes.append(CommutativeCancellation())
    passes.append(FixedPoint("size"))
    return passes, (lambda ps: not ps.get("size_fixed", False))


__all__ = [
    "STRUCTURAL",
    "CancelInverses",
    "ChooseLayout",
    "CommutativeCancellation",
    "DecomposeToBasis",
    "FixedPoint",
    "FuseGates",
    "MergeRotations",
    "RecordSize",
    "RemoveIdentities",
    "Route",
    "Size",
    "ZXOptimize",
    "peephole_loop",
]
