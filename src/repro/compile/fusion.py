"""Gate fusion: merge runs of adjacent gates into single small unitaries.

Dense simulation cost is dominated by the number of sweeps over the
``2**n`` state, so collapsing a run of gates that jointly touch at most
``max_fused_qubits`` qubits into one matrix trades a handful of tiny
matrix products for whole state sweeps.  The pass is backend-agnostic:
the fused circuit consists of ordinary :class:`Operation` objects whose
gates carry explicit matrices, so it feeds the array, decision-diagram,
and tensor-network simulators alike.

Algorithm: a single forward scan keeps, per qubit, a pointer to the
*open* fusion group that last touched it.  A unitary operation joins the
group when all of its qubits point to that same group (or are untouched)
and the union of supports stays within ``max_fused_qubits``; otherwise it
opens a new group and takes ownership of its qubits.  Ownership transfer
guarantees that two groups overlapping in time act on disjoint qubits, so
emitting groups in creation order preserves the circuit's semantics.
Measurements, barriers, and classically-conditioned operations act as
fences on the qubits they touch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from ..arrays.kernels import apply_matrix_fast
from ..circuits.circuit import Operation, QuantumCircuit
from ..circuits.gates import Gate


class _Group:
    """An open run of fusable operations with a shared qubit support."""

    __slots__ = ("ops", "support")

    def __init__(self, op: Operation) -> None:
        self.ops: List[Operation] = [op]
        self.support: Set[int] = set(op.qubits)


def fused_matrix(ops: List[Operation], support: List[int]) -> np.ndarray:
    """Compose the operations into one unitary over the sorted support.

    ``support[0]`` is the least significant qubit of the result, matching
    the gate-library convention for multi-target gates.
    """
    local = {q: i for i, q in enumerate(support)}
    unitary = np.eye(1 << len(support), dtype=np.complex128)
    for op in ops:
        apply_matrix_fast(
            unitary,
            op.gate.matrix,
            [local[t] for t in op.targets],
            [local[c] for c in op.controls],
            len(support),
        )
    return unitary


def _emit(group: _Group) -> Operation:
    if len(group.ops) == 1:
        return group.ops[0]
    support = sorted(group.support)
    matrix = fused_matrix(group.ops, support)
    gate = Gate(f"fused{len(support)}", len(support), matrix)
    return Operation(gate, support)


def fuse_gates(
    circuit: QuantumCircuit, max_fused_qubits: int = 2
) -> QuantumCircuit:
    """Return a circuit with adjacent small gates merged into unitaries.

    Groups containing a single operation are emitted unchanged (named
    gates stay named); fused groups become ``fused{k}`` gates acting on
    their sorted support.  The result is unitarily equivalent to the
    input, including through measurements and feed-forward.
    """
    if max_fused_qubits < 1:
        raise ValueError("max_fused_qubits must be at least 1")
    # Emission list holds open/closed groups and fence operations in
    # creation order; ``active`` maps each qubit to the open group that
    # owns it.  A ``None`` entry is a tombstone left by a fence: the next
    # operation on that qubit must open a new group (a plain pop would
    # let an older group re-acquire the qubit and slide a unitary across
    # a measurement).
    emitted: List = []
    active: Dict[int, Optional[_Group]] = {}

    def fence(qubits) -> None:
        for q in qubits:
            active[q] = None

    for op in circuit.operations:
        if op.is_barrier:
            fence(op.qubits if op.qubits else list(active.keys()))
            emitted.append(op)
            continue
        if op.is_measurement or op.condition is not None or not op.is_unitary:
            fence(op.qubits)
            emitted.append(op)
            continue
        qubits = op.qubits
        if not qubits:
            # Uncontrolled global phase touches nothing; pass through.
            emitted.append(op)
            continue
        owners = {active[q] for q in qubits if q in active}
        if len(owners) == 1:
            group = next(iter(owners))
            if (
                group is not None
                and len(group.support | set(qubits)) <= max_fused_qubits
            ):
                group.ops.append(op)
                group.support.update(qubits)
                for q in qubits:
                    active[q] = group
                continue
        group = _Group(op)
        emitted.append(group)
        for q in qubits:
            active[q] = group

    out = QuantumCircuit(circuit.num_qubits, name=circuit.name + "_fused")
    out.num_clbits = circuit.num_clbits
    for item in emitted:
        out.append(_emit(item) if isinstance(item, _Group) else item)
    return out


def fusion_report(
    circuit: QuantumCircuit, max_fused_qubits: int = 2
) -> Dict[str, int]:
    """Summary statistics of what fusion would do to ``circuit``."""
    fused = fuse_gates(circuit, max_fused_qubits=max_fused_qubits)
    return {
        "ops_before": len(circuit.operations),
        "ops_after": len(fused.operations),
        "fused_ops": sum(
            1 for op in fused.operations if op.gate.name.startswith("fused")
        ),
    }
