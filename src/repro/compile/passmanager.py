"""Scheduled pass-manager for the compiler (qiskit-transpiler style).

The fixed if-ladder pipeline in :mod:`repro.compile.compiler` is replaced
by a scheduler over declared *passes*:

- an :class:`AnalysisPass` inspects the circuit and records facts in the
  shared :class:`PropertySet` without touching the circuit;
- a :class:`TransformationPass` returns a rewritten circuit and declares
  which previously-computed properties survive the rewrite
  (``preserves``) and which are destroyed (``invalidates``);
- every pass may declare ``requires`` — passes whose properties must be
  valid before it runs — and the :class:`PassManager` resolves those
  recursively, skipping any pass whose provided properties are already
  valid.

Stages group passes and add control flow: ``do_while`` re-runs a stage
until its predicate over the property set goes false (bounded by
``max_iterations``) and ``condition`` gates a stage entirely — enough to
express the peephole fixed-point loop, conditional ZX optimization, and
the resynthesis rounds as data instead of code.

Every executed pass runs inside a ``compile.pass`` span
(:mod:`repro.obs`) carrying gate/depth/two-qubit counts, and the manager
returns per-pass delta records that :class:`~repro.compile.compiler.CompilationResult`
surfaces as ``stats["passes"]``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..circuits.circuit import QuantumCircuit
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace


class PropertySet(dict):
    """Analysis results threaded between passes.

    A plain ``dict`` with attribute sugar; the *validity* of entries is
    tracked separately by the scheduler (a transformation that does not
    preserve a property removes it from the valid set, and the next pass
    requiring it triggers recomputation).
    """

    def __getattr__(self, name: str) -> Any:
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None


class BasePass:
    """A unit of compilation work with declared scheduling metadata.

    Attributes:
        requires: passes whose ``provides`` must all be valid before this
            pass runs; the scheduler runs them (recursively) if not.
        provides: property names this pass computes/establishes.
        preserves: property names that stay valid through this pass
            (ignored for analysis passes — they preserve everything).
        invalidates: property names destroyed even if preserved/provided
            elsewhere.
    """

    is_analysis: bool = False
    requires: Tuple["BasePass", ...] = ()
    provides: Tuple[str, ...] = ()
    preserves: frozenset = frozenset()
    invalidates: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return type(self).__name__

    def run(
        self, circuit: QuantumCircuit, properties: PropertySet
    ) -> Optional[QuantumCircuit]:
        """Analysis passes return ``None``; transformations a new circuit."""
        raise NotImplementedError

    def already_satisfied(
        self,
        circuit: QuantumCircuit,
        properties: PropertySet,
        valid: Set[str],
    ) -> bool:
        """Whether running this pass would be redundant right now."""
        return bool(self.provides) and set(self.provides) <= valid

    def __repr__(self) -> str:
        return f"<{self.name}>"


class AnalysisPass(BasePass):
    """Computes properties; never modifies the circuit."""

    is_analysis = True


class TransformationPass(BasePass):
    """Rewrites the circuit; transformations re-run whenever scheduled."""

    is_analysis = False

    def already_satisfied(
        self,
        circuit: QuantumCircuit,
        properties: PropertySet,
        valid: Set[str],
    ) -> bool:
        return False


class Stage:
    """An ordered group of passes with optional control flow.

    ``do_while(properties)`` true re-runs the stage (up to
    ``max_iterations`` total iterations); ``condition(properties)``
    false skips the stage entirely.
    """

    def __init__(
        self,
        passes: Sequence[BasePass],
        do_while: Optional[Callable[[PropertySet], bool]] = None,
        condition: Optional[Callable[[PropertySet], bool]] = None,
        max_iterations: int = 20,
        name: str = "",
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.passes = list(passes)
        self.do_while = do_while
        self.condition = condition
        self.max_iterations = max_iterations
        self.name = name or "stage"


class PassManagerResult:
    """Final circuit plus the property set and per-pass execution records."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        properties: PropertySet,
        records: List[Dict[str, Any]],
    ) -> None:
        self.circuit = circuit
        self.properties = properties
        self.records = records

    def __repr__(self) -> str:
        executed = sum(1 for r in self.records if not r["skipped"])
        return (
            f"PassManagerResult({len(self.circuit)} ops, "
            f"{executed} passes run, {len(self.records) - executed} skipped)"
        )


class PassManager:
    """Schedules stages of passes over a circuit.

    The scheduler maintains the set of *valid* property names: analysis
    results stay valid until a transformation fails to preserve them.  A
    pass whose provided properties are all valid is skipped (recorded
    with ``skipped=True``); requirements are resolved recursively before
    each pass.  Transformations that return an identical operation list
    are treated as no-ops and preserve every property.
    """

    def __init__(self, stages: Sequence[Stage] = ()) -> None:
        self.stages: List[Stage] = list(stages)

    def append(
        self,
        passes,
        do_while: Optional[Callable[[PropertySet], bool]] = None,
        condition: Optional[Callable[[PropertySet], bool]] = None,
        max_iterations: int = 20,
        name: str = "",
    ) -> "PassManager":
        """Add a stage (a single pass or a sequence of passes)."""
        if isinstance(passes, BasePass):
            passes = [passes]
        self.stages.append(
            Stage(
                passes,
                do_while=do_while,
                condition=condition,
                max_iterations=max_iterations,
                name=name,
            )
        )
        return self

    def run(
        self,
        circuit: QuantumCircuit,
        properties: Optional[PropertySet] = None,
    ) -> PassManagerResult:
        properties = (
            properties if properties is not None else PropertySet()
        )
        valid: Set[str] = set(properties)
        records: List[Dict[str, Any]] = []
        resolving: List[str] = []

        def execute(p: BasePass, current: QuantumCircuit) -> QuantumCircuit:
            if p.name in resolving:
                raise RuntimeError(
                    "circular pass requirement: "
                    + " -> ".join(resolving + [p.name])
                )
            resolving.append(p.name)
            try:
                for req in p.requires:
                    if not (
                        req.provides and set(req.provides) <= valid
                    ):
                        current = execute(req, current)
            finally:
                resolving.pop()
            if p.already_satisfied(current, properties, valid):
                records.append(
                    {
                        "pass": p.name,
                        "skipped": True,
                        "ops": len(current),
                    }
                )
                return current
            span = obs_trace.timed_span("compile.pass", pass_name=p.name)
            ops_before = len(current)
            depth_before = current.depth()
            two_qubit_before = current.two_qubit_gate_count()
            try:
                result = p.run(current, properties)
            except BaseException:
                span.finish(status="error")
                raise
            changed = False
            if result is not None and not p.is_analysis:
                changed = (
                    len(result) != ops_before
                    or result.operations != current.operations
                )
                if changed:
                    current = result
                    kept = valid & p.preserves
                    valid.clear()
                    valid.update(kept)
            valid.update(p.provides)
            valid.difference_update(p.invalidates)
            ops_after = len(current)
            depth_after = current.depth()
            two_qubit_after = current.two_qubit_gate_count()
            span.finish(
                ops_before=ops_before,
                ops_after=ops_after,
                depth_before=depth_before,
                depth_after=depth_after,
                two_qubit_before=two_qubit_before,
                two_qubit_after=two_qubit_after,
                changed=changed,
            )
            obs_metrics.counter_add("compile.pass.runs")
            obs_metrics.observe(
                "compile.pass.ops_removed", ops_before - ops_after
            )
            obs_metrics.gauge_set("compile.ops", ops_after)
            obs_metrics.gauge_set("compile.depth", depth_after)
            obs_metrics.gauge_set("compile.two_qubit", two_qubit_after)
            records.append(
                {
                    "pass": p.name,
                    "skipped": False,
                    "changed": changed,
                    "ops_before": ops_before,
                    "ops_after": ops_after,
                    "depth_before": depth_before,
                    "depth_after": depth_after,
                    "two_qubit_before": two_qubit_before,
                    "two_qubit_after": two_qubit_after,
                    "elapsed_s": round(span.duration_s, 6),
                }
            )
            return current

        current = circuit
        for stage in self.stages:
            if stage.condition is not None and not stage.condition(
                properties
            ):
                continue
            with obs_trace.span("compile.stage", stage=stage.name):
                for _ in range(stage.max_iterations):
                    for p in stage.passes:
                        current = execute(p, current)
                    if stage.do_while is None or not stage.do_while(
                        properties
                    ):
                        break
        return PassManagerResult(current, properties, records)
