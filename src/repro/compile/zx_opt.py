"""ZX-calculus based circuit optimization (paper Sec. V, refs. [38], [39]).

The pipeline is: circuit -> ZX-diagram -> graph-like simplification ->
circuit extraction -> peephole cleanup.  ``full_reduce`` is attempted first
(better T-count); if its phase gadgets defeat the extractor, the pass falls
back to ``clifford_simp``, which always extracts.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..circuits.circuit import QuantumCircuit
from ..zx.circuit_conv import circuit_to_zx
from ..zx.extract import ExtractionError, extract_circuit
from ..zx.simplify import clifford_simp, full_reduce
from .optimize import optimize


class ZXOptimizationReport:
    def __init__(
        self,
        original: QuantumCircuit,
        optimized: QuantumCircuit,
        strategy: str,
        spiders_before: int,
        spiders_after: int,
    ) -> None:
        self.original = original
        self.optimized = optimized
        self.strategy = strategy
        self.spiders_before = spiders_before
        self.spiders_after = spiders_after

    def summary(self) -> Dict[str, int]:
        return {
            "gates_before": len(self.original),
            "gates_after": len(self.optimized),
            "two_qubit_before": self.original.two_qubit_gate_count(),
            "two_qubit_after": self.optimized.two_qubit_gate_count(),
            "t_before": self.original.t_count(),
            "spiders_before": self.spiders_before,
            "spiders_after": self.spiders_after,
        }


def zx_optimize(
    circuit: QuantumCircuit, prefer_full_reduce: bool = True
) -> ZXOptimizationReport:
    """Optimize a measurement-free circuit through the ZX-calculus.

    The result is equivalent to the input up to global phase (the test
    suite checks this against the array backend on every workload).
    """
    diagram = circuit_to_zx(circuit.without_measurements())
    spiders_before = len(diagram.spiders())
    strategy = "clifford_simp"
    extracted: Optional[QuantumCircuit] = None
    if prefer_full_reduce:
        attempt = diagram.copy()
        full_reduce(attempt)
        try:
            extracted = extract_circuit(attempt)
            strategy = "full_reduce"
            diagram = attempt
        except ExtractionError:
            extracted = None
    if extracted is None:
        clifford_simp(diagram)
        extracted = extract_circuit(diagram)
    optimized = optimize(extracted)
    optimized.name = circuit.name + "_zxopt"
    return ZXOptimizationReport(
        circuit, optimized, strategy, spiders_before, len(diagram.spiders())
    )


def zx_t_count(circuit: QuantumCircuit) -> int:
    """T-count of the circuit after full ZX reduction (ref. [39] metric)."""
    diagram = circuit_to_zx(circuit.without_measurements())
    full_reduce(diagram)
    return diagram.t_count()
